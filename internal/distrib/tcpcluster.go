package distrib

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Fleet is a set of dialed worker daemons (cmd/dcfworker processes, or
// in-process cluster.Workers in tests and benchmarks). One fleet can host
// any number of TCPClusters; workers are addressed by the names they
// self-report in the hello handshake. A worker whose control connection
// dies is redialed lazily on the next step that needs it — the restart
// path that makes "kill a worker, restart it, keep stepping" work.
type Fleet struct {
	mu      sync.Mutex
	workers map[string]*fleetWorker
	closed  bool
	nextGID uint64
	// generation counts explicit membership changes (Add/Remove). Job
	// runners compare it across checkpoint boundaries to absorb joins.
	generation uint64
}

// fleetWorker is one daemon's slot in the fleet. Redials happen under the
// slot's own mutex so a down worker's connect timeout never stalls fleet
// operations that touch only healthy workers.
type fleetWorker struct {
	addr string

	mu     sync.Mutex
	client *cluster.Client
	epoch  int // bumped on every successful redial
}

// Dial connects to worker daemons at the given control addresses and
// performs the hello handshake with each.
func Dial(addrs ...string) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distrib: Dial needs at least one worker address")
	}
	f := &Fleet{workers: map[string]*fleetWorker{}}
	for _, addr := range addrs {
		c, err := cluster.DialWorker(addr)
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, dup := f.workers[c.Name()]; dup {
			c.Close()
			f.Close()
			return nil, fmt.Errorf("distrib: two workers report the name %q", c.Name())
		}
		f.workers[c.Name()] = &fleetWorker{addr: addr, client: c, epoch: 1}
	}
	return f, nil
}

// Workers lists the fleet's worker names, sorted.
func (f *Fleet) Workers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.workers))
	for n := range f.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close tears down every control connection. A closed fleet stays closed:
// later steps fail fast instead of silently redialing connections nothing
// would ever clean up.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	workers := make([]*fleetWorker, 0, len(f.workers))
	for _, w := range f.workers {
		workers = append(workers, w)
	}
	f.mu.Unlock()
	for _, w := range workers {
		w.mu.Lock()
		if w.client != nil {
			w.client.Close()
		}
		w.mu.Unlock()
	}
}

// client returns a live client for the worker, redialing a dead one (the
// daemon may have restarted at the same control address). The epoch
// increments on every redial so clusters know to re-register. Only the
// worker's own slot is locked across the dial, so a down worker's connect
// timeout never delays operations on its healthy peers.
func (f *Fleet) client(name string) (*cluster.Client, int, error) {
	f.mu.Lock()
	w, ok := f.workers[name]
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, 0, fmt.Errorf("distrib: fleet closed")
	}
	if !ok {
		return nil, 0, fmt.Errorf("distrib: unknown worker %q", name)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.client.Alive() {
		return w.client, w.epoch, nil
	}
	w.client.Close()
	fresh, err := cluster.DialWorker(w.addr)
	if err != nil {
		return nil, 0, fmt.Errorf("distrib: worker %q is down: %w", name, err)
	}
	if fresh.Name() != name {
		fresh.Close()
		return nil, 0, fmt.Errorf("distrib: worker at %s now reports name %q, want %q", w.addr, fresh.Name(), name)
	}
	// Re-check closed while holding the slot: a Close that ran between the
	// first check and the redial must not be undone by installing a fresh
	// client nothing would ever close. (A Close that starts after this
	// check blocks on w.mu and will close the fresh client itself.)
	f.mu.Lock()
	closed = f.closed
	f.mu.Unlock()
	if closed {
		fresh.Close()
		return nil, 0, fmt.Errorf("distrib: fleet closed")
	}
	w.client = fresh
	w.epoch++
	return fresh, w.epoch, nil
}

// liveClient returns the worker's current client if it is alive, without
// redialing (used by teardown paths that must not block on a dead daemon).
func (f *Fleet) liveClient(name string) *cluster.Client {
	f.mu.Lock()
	w := f.workers[name]
	f.mu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.client != nil && w.client.Alive() {
		return w.client
	}
	return nil
}

// gid allocates a fleet-unique graph id.
func (f *Fleet) gid() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextGID++
	return f.nextGID
}

// TCPOptions configures a multi-process cluster.
type TCPOptions struct {
	// DefaultDevice places unplaced nodes.
	DefaultDevice string
	// WorkerOf maps devices to worker names; the default takes the device
	// prefix before '/' ("wA/cpu" -> "wA", "w1" -> "w1"). Every worker it
	// names must be in the fleet.
	WorkerOf partition.WorkerOf
	// ParallelIterations overrides the loop window on every worker.
	ParallelIterations int
	// Workers sizes each worker daemon's per-step kernel pool
	// (0 = GOMAXPROCS there; exec.WorkersSpawn = legacy spawn).
	Workers int
	// Latency/Bandwidth inject simulated fabric characteristics into every
	// worker's rendezvous deliveries (benchmark sweeps on loopback).
	Latency   time.Duration
	Bandwidth float64
	// FaultSeed/FaultResetProb/FaultDropProb arm seeded conn-reset and
	// send-drop injection on every worker's rendezvous send path
	// (rendezvous.Net.SetFaults): deterministic chaos for fleet tests.
	FaultSeed      int64
	FaultResetProb float64
	FaultDropProb  float64
	// CheckpointDir, when set, is where distributed checkpoints of this
	// cluster's session variables are written (see internal/checkpoint's
	// manifest layout). Required for Checkpoint/Resume.
	CheckpointDir string
	// CheckpointEvery, when > 0, checkpoints automatically after every
	// n-th step: RunCtx quiesces the cluster at that step boundary and
	// captures every worker's variable shard before returning. Requires
	// CheckpointDir.
	CheckpointEvery uint64
}

// DeviceWorker is the default TCPOptions.WorkerOf.
func DeviceWorker(dev string) string {
	if i := strings.IndexByte(dev, '/'); i >= 0 {
		return dev[:i]
	}
	return dev
}

// TCPCluster executes a partitioned graph across worker daemons: the same
// contract as the in-process Cluster (fetches fixed at construction, each
// Run one step, reassembly in caller order) but with every partition on a
// remote worker. The driver is a pure coordinator: it broadcasts the step,
// waits for completions, and fans a cancellation or first failure out to
// the other workers so their blocked Recvs drain (§3's failure model: the
// step dies, the cluster survives).
type TCPCluster struct {
	fleet   *Fleet
	gid     uint64
	opts    TCPOptions
	fetches []graph.Output
	workers []string // participating workers, registration order

	// regMu guards the registration state (regs, registeredEpoch) against
	// concurrent RunCtx callers racing a reconnect's re-registration.
	regMu           sync.Mutex
	regs            map[string]*cluster.RegisterGraph
	registeredEpoch map[string]int

	// fetchWorker/fetchSlot route each caller fetch to (worker, index in
	// that worker's StepResp.Vals).
	fetchWorker []string
	fetchSlot   []int

	mu          sync.Mutex
	step        uint64
	outstanding map[uint64]bool
	released    uint64 // all steps <= released completed cluster-wide
	closed      bool

	// ckptGate quiesces the cluster at step boundaries: every step holds
	// the read side for its whole duration, and Checkpoint/RestoreState
	// take the write side — so a checkpoint is a consistent cut with no
	// step in flight anywhere (the paper's §3 coarse-grained model).
	// sync.RWMutex's writer preference guarantees the checkpoint makes
	// progress under a continuous stream of steps.
	ckptGate sync.RWMutex
	// sig is the GraphSig over every session variable the graph declares;
	// hosted routes variable names to the worker whose partition owns them.
	sig    uint64
	hosted map[string][]string
}

// NewCluster prunes the builder's graph to the fetches/targets, partitions
// it across the fleet's workers, and registers each worker's partitions on
// its daemon (plans compile once, at registration).
func (f *Fleet) NewCluster(b *core.Builder, fetches []graph.Output, targets []*graph.Node, opts TCPOptions) (*TCPCluster, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	if opts.DefaultDevice == "" {
		opts.DefaultDevice = "cpu:0"
	}
	if opts.WorkerOf == nil {
		opts.WorkerOf = DeviceWorker
	}
	partition.Place(b.G, opts.DefaultDevice)
	nodes := core.Prune(b.G, fetches, targets)
	res, err := partition.Partition(b.G, nodes, opts.WorkerOf)
	if err != nil {
		return nil, err
	}
	if err := partition.Validate(res); err != nil {
		return nil, err
	}
	byWorker, workerOrder := partition.ByWorker(res, opts.WorkerOf)

	c := &TCPCluster{
		fleet:           f,
		gid:             f.gid(),
		opts:            opts,
		fetches:         fetches,
		workers:         workerOrder,
		regs:            map[string]*cluster.RegisterGraph{},
		registeredEpoch: map[string]int{},
		fetchWorker:     make([]string, len(fetches)),
		fetchSlot:       make([]int, len(fetches)),
		outstanding:     map[uint64]bool{},
	}

	// Route each fetch to the worker (and response slot) that produces it.
	perDev := map[string][]cluster.WireOutput{}
	for i, fe := range fetches {
		if fe.Node == nil {
			return nil, fmt.Errorf("distrib: invalid fetch %d", i)
		}
		dev := fe.Node.Device()
		c.fetchWorker[i] = opts.WorkerOf(dev)
		perDev[dev] = append(perDev[dev], cluster.WireOutput{Node: fe.Node.Name(), Index: fe.Index})
	}
	// Per worker: concatenated parts in device order fix the slot layout.
	fetchBase := map[string]int{} // device -> base slot within its worker's Vals
	for _, w := range workerOrder {
		base := 0
		for _, dev := range byWorker[w] {
			fetchBase[dev] = base
			base += len(perDev[dev])
		}
	}
	devSeen := map[string]int{}
	for i, fe := range fetches {
		dev := fe.Node.Device()
		c.fetchSlot[i] = fetchBase[dev] + devSeen[dev]
		devSeen[dev]++
	}

	// Build one registration per worker: the closed union of its devices'
	// partitions plus the per-device node lists and fetches. The Peers map
	// is left nil here — registerAll fills it with fresh data-plane
	// addresses (and thereby verifies the fleet covers every partitioned
	// worker) on every (re)registration.
	for _, w := range workerOrder {
		var union []*graph.Node
		var parts []cluster.WirePartition
		for _, dev := range byWorker[w] {
			devNodes := res.Parts[dev]
			union = append(union, devNodes...)
			names := make([]string, len(devNodes))
			for i, n := range devNodes {
				names[i] = n.Name()
			}
			parts = append(parts, cluster.WirePartition{
				Device:  dev,
				Nodes:   names,
				Fetches: perDev[dev],
			})
		}
		wireNodes, err := cluster.EncodeNodes(union)
		if err != nil {
			return nil, fmt.Errorf("distrib: worker %q: %w", w, err)
		}
		c.regs[w] = &cluster.RegisterGraph{
			GraphID:            c.gid,
			Nodes:              wireNodes,
			Parts:              parts,
			Peers:              nil, // filled by registerAll
			ParallelIterations: opts.ParallelIterations,
			Workers:            opts.Workers,
			Latency:            opts.Latency,
			Bandwidth:          opts.Bandwidth,
			FaultSeed:          opts.FaultSeed,
			FaultResetProb:     opts.FaultResetProb,
			FaultDropProb:      opts.FaultDropProb,
		}
	}
	// Map each worker's session variables (nodes carrying a "var" attr in
	// its partition) for checkpoint sharding, and hash the full variable
	// set into the graph signature checkpoints are keyed by.
	c.hosted = map[string][]string{}
	var allVars []string
	for _, w := range workerOrder {
		if vs := cluster.HostedVars(c.regs[w].Nodes); len(vs) > 0 {
			c.hosted[w] = vs
			allVars = append(allVars, vs...)
		}
	}
	c.sig = checkpoint.GraphSig(allVars)
	if err := c.registerAll(); err != nil {
		return nil, err
	}
	return c, nil
}

// registerAll (re)installs the graph on every participating worker with
// fresh peer addresses, recording the epoch each registration landed on.
// Callers hold c.regMu (NewCluster is pre-publication and exempt).
func (c *TCPCluster) registerAll() error {
	// Refresh the peer map first: a restarted worker has a new data addr.
	peers := map[string]string{}
	for _, w := range c.workers {
		cl, _, err := c.fleet.client(w)
		if err != nil {
			return err
		}
		peers[w] = cl.DataAddr()
	}
	for _, w := range c.workers {
		cl, epoch, err := c.fleet.client(w)
		if err != nil {
			return err
		}
		c.regs[w].Peers = peers
		if err := cl.Register(c.regs[w]); err != nil {
			return err
		}
		c.registeredEpoch[w] = epoch
	}
	return nil
}

// Workers returns the participating worker names in registration order.
func (c *TCPCluster) Workers() []string { return append([]string(nil), c.workers...) }

// EnsureRegistered verifies every participating worker is reachable and
// still holds a current registration, re-registering the graph everywhere
// when any worker's control connection was redialed since the last
// registration (a restarted daemon comes back empty, and its data address
// changed, so every peer's map must refresh). Every step runs through this
// check; serving-fleet probes also call it directly to readmit a restarted
// replica before routing traffic to it. regMu serializes concurrent
// callers so one re-registers and the rest observe the fresh epochs.
func (c *TCPCluster) EnsureRegistered() error {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	reRegister := false
	for _, w := range c.workers {
		_, epoch, err := c.fleet.client(w)
		if err != nil {
			return err
		}
		if epoch != c.registeredEpoch[w] {
			reRegister = true
		}
	}
	if reRegister {
		return c.registerAll()
	}
	return nil
}

// Run executes one step (Background context).
func (c *TCPCluster) Run(feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	return c.RunCtx(context.Background(), feeds)
}

// RunCtx executes one step under ctx: feeds are broadcast to every worker,
// the workers' executors make independent progress coordinating only
// through the step-scoped rendezvous, and the fetches come back reassembled
// in caller order. Cancellation (or the first worker failure) is fanned out
// as an abort so every partition's blocked Recvs drain; the step fails with
// a wrapped error and the cluster remains usable for the next step.
//
// With CheckpointEvery set, every n-th step is a checkpoint boundary: after
// the step's values are in, RunCtx quiesces the cluster and captures a
// distributed checkpoint before returning. A checkpoint failure fails the
// step (the values are discarded) — callers recover the same way they would
// from a step failure.
func (c *TCPCluster) RunCtx(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	out, step, err := c.runStep(ctx, feeds, false)
	if err != nil {
		return nil, err
	}
	if c.opts.CheckpointEvery > 0 && step%c.opts.CheckpointEvery == 0 {
		if _, err := c.Checkpoint(); err != nil {
			return nil, fmt.Errorf("distrib: step %d: auto-checkpoint: %w", step, err)
		}
	}
	return out, nil
}

// runStep is RunCtx without the checkpoint policy; it holds the read side
// of ckptGate for its entire duration so checkpoints only ever observe
// step boundaries.
// RunTraced executes one step with per-node tracing enabled on every
// worker, pulls each worker's span timeline over the control plane, and
// merges them into one Chrome trace-event file (pid = worker, tid =
// device/stream, flow events linking Send->Recv across partitions) loadable
// in Perfetto or chrome://tracing. Returns the step's fetches and the
// merged JSON.
func (c *TCPCluster) RunTraced(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, []byte, error) {
	out, step, err := c.runStep(ctx, feeds, true)
	if err != nil {
		return nil, nil, err
	}
	js, err := c.CollectTrace(step)
	if err != nil {
		return nil, nil, err
	}
	return out, js, nil
}

// CollectTrace pulls every worker's recorded spans for a traced step and
// merges the per-worker timelines onto one clock.
func (c *TCPCluster) CollectTrace(step uint64) ([]byte, error) {
	parts := make([]trace.Part, 0, len(c.workers))
	for i, w := range c.workers {
		cl, _, err := c.fleet.client(w)
		if err != nil {
			return nil, fmt.Errorf("distrib: trace step %d: %w", step, err)
		}
		resp, err := cl.Trace(c.gid, step)
		if err != nil {
			return nil, fmt.Errorf("distrib: trace step %d: %w", step, err)
		}
		parts = append(parts, trace.Part{PID: i + 1, Name: w, Base: resp.Base, Events: resp.Spans})
	}
	return trace.MergeChrome(parts)
}

func (c *TCPCluster) runStep(ctx context.Context, feeds map[string]*tensor.Tensor, traced bool) ([]*tensor.Tensor, uint64, error) {
	c.ckptGate.RLock()
	defer c.ckptGate.RUnlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("distrib: cluster closed")
	}
	c.step++
	step := c.step
	c.outstanding[step] = true
	released := c.released
	c.mu.Unlock()
	defer c.finishStep(step)

	// Reconnect path: if any worker's control conn died (daemon restart),
	// redial and re-register everywhere — peer data addresses changed.
	if err := c.EnsureRegistered(); err != nil {
		return nil, step, fmt.Errorf("distrib: step %d: %w", step, err)
	}

	wireFeeds := cluster.FeedsToWire(feeds)
	type workerChan struct {
		name string
		cl   *cluster.Client
		ch   <-chan *cluster.StepResp
	}
	launched := make([]workerChan, 0, len(c.workers))
	for _, w := range c.workers {
		cl, _, err := c.fleet.client(w)
		if err != nil {
			// A worker died between the epoch check and launch: abort the
			// step on every worker already launched, or their executors
			// would block in cross-worker Recvs for tokens that will never
			// arrive.
			for _, wc := range launched {
				wc.cl.Abort(c.gid, step, err.Error())
			}
			return nil, step, fmt.Errorf("distrib: step %d: %w", step, err)
		}
		ch := cl.StartStep(&cluster.StepReq{
			GraphID:        c.gid,
			Step:           step,
			Feeds:          wireFeeds,
			ReleaseThrough: released,
			Trace:          traced,
		})
		launched = append(launched, workerChan{name: w, cl: cl, ch: ch})
	}

	abortAll := func(reason string) {
		for _, wc := range launched {
			wc.cl.Abort(c.gid, step, reason)
		}
	}
	// Fan the responses in as they arrive: the first failure (or the
	// context firing) must abort the other workers immediately — waiting
	// on workers in a fixed order would let a healthy-but-blocked worker
	// delay the fan-out.
	type namedResp struct {
		name string
		r    *cluster.StepResp
	}
	agg := make(chan namedResp, len(launched))
	for _, wc := range launched {
		wc := wc
		go func() { agg <- namedResp{name: wc.name, r: <-wc.ch} }() // dcfvet:allow goroleak=wc.ch is cap-1 and always answered exactly once: readLoop delivers the response or fail() drains pending on connection loss
	}
	var firstErr error
	aborted := false
	resps := map[string]*cluster.StepResp{}
	for len(resps) < len(launched) {
		select {
		case nr := <-agg:
			if nr.r.Err != "" && firstErr == nil {
				firstErr = fmt.Errorf("distrib: step %d: worker %q: %s", step, nr.name, nr.r.Err)
				if !aborted {
					aborted = true
					abortAll(nr.r.Err)
				}
			}
			resps[nr.name] = nr.r
		case <-ctx.Done():
			// Fan the abort out and return promptly — blocking here until
			// every worker answers would let one wedged-but-connected
			// daemon defeat cancellation. The forwarder goroutines drain
			// into the buffered agg channel (no leak), and the canceled
			// step's scopes are reclaimed by the release watermark.
			abortAll(context.Cause(ctx).Error())
			return nil, step, fmt.Errorf("distrib: step %d canceled: %w", step, context.Cause(ctx))
		}
	}
	if firstErr != nil {
		return nil, step, firstErr
	}

	// Reassemble fetches in caller order.
	out := make([]*tensor.Tensor, len(c.fetches))
	for i := range c.fetches {
		r := resps[c.fetchWorker[i]]
		if r == nil {
			return nil, step, fmt.Errorf("distrib: step %d: no response from worker %q for fetch %d", step, c.fetchWorker[i], i)
		}
		if c.fetchSlot[i] >= len(r.Vals) {
			return nil, step, fmt.Errorf("distrib: step %d: worker %q returned %d values, fetch %d needs slot %d",
				step, c.fetchWorker[i], len(r.Vals), i, c.fetchSlot[i])
		}
		t, err := cluster.TensorFromWire(r.Vals[c.fetchSlot[i]])
		if err != nil {
			return nil, step, fmt.Errorf("distrib: fetch %d: %w", i, err)
		}
		out[i] = t
	}
	return out, step, nil
}

// finishStep retires a step and advances the completed-through watermark
// (piggybacked on the next StepReq so workers can release old scopes).
func (c *TCPCluster) finishStep(step uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.outstanding, step)
	min := c.step + 1
	for s := range c.outstanding {
		if s < min {
			min = s
		}
	}
	if min-1 > c.released {
		c.released = min - 1
	}
}

// Sig returns the graph signature (GraphSig over the session variables the
// graph declares) that this cluster's checkpoints are keyed by.
func (c *TCPCluster) Sig() uint64 { return c.sig }

// Step returns the last step number handed out.
func (c *TCPCluster) Step() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// SetStep positions the step counter (resume-from-checkpoint): the next
// RunCtx executes step n+1. The release watermark moves with it so the
// first resumed step does not ask workers to release steps that never ran
// under this graph id.
func (c *TCPCluster) SetStep(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.step = n
	c.released = n
}

// checkVarOwnership rejects a graph in which the same session variable is
// hosted by two workers: each worker holds an independent container, so
// such "shared" variables are silently divergent copies — checkpointing
// them would record two contradictory values under one name.
func (c *TCPCluster) checkVarOwnership() error {
	owner := map[string]string{}
	for _, w := range c.workers {
		for _, v := range c.hosted[w] {
			if prev, dup := owner[v]; dup {
				return fmt.Errorf("distrib: variable %q is hosted by both %q and %q — one variable, one owning worker", v, prev, w)
			}
			owner[v] = w
		}
	}
	return nil
}

// Checkpoint quiesces the cluster at the current step boundary and captures
// a distributed checkpoint: every variable-hosting worker snapshots its
// shard over the control plane, the driver writes the shards and then the
// manifest (durably, in that order), and LATEST flips to the new step. It
// returns the step the checkpoint captured. Concurrent RunCtx callers block
// for the checkpoint's duration and then proceed.
func (c *TCPCluster) Checkpoint() (uint64, error) {
	if c.opts.CheckpointDir == "" {
		return 0, fmt.Errorf("distrib: Checkpoint needs TCPOptions.CheckpointDir")
	}
	if err := c.checkVarOwnership(); err != nil {
		return 0, err
	}
	c.ckptGate.Lock()
	defer c.ckptGate.Unlock()
	c.mu.Lock()
	step := c.step
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("distrib: cluster closed")
	}
	m := &checkpoint.Manifest{Sig: c.sig, Step: step}
	for _, w := range c.workers {
		if len(c.hosted[w]) == 0 {
			continue
		}
		cl, _, err := c.fleet.client(w)
		if err != nil {
			return 0, fmt.Errorf("distrib: checkpoint step %d: %w", step, err)
		}
		snaps, err := cl.Checkpoint(c.gid, step)
		if err != nil {
			return 0, fmt.Errorf("distrib: checkpoint step %d: %w", step, err)
		}
		state, err := cluster.SnapshotsFromWire(snaps)
		if err != nil {
			return 0, fmt.Errorf("distrib: checkpoint step %d: worker %q: %w", step, w, err)
		}
		shard, err := checkpoint.WriteShard(c.opts.CheckpointDir, step, w, state)
		if err != nil {
			return 0, fmt.Errorf("distrib: checkpoint step %d: %w", step, err)
		}
		m.Shards = append(m.Shards, shard)
	}
	if err := checkpoint.WriteManifest(c.opts.CheckpointDir, m); err != nil {
		return 0, fmt.Errorf("distrib: checkpoint step %d: %w", step, err)
	}
	return step, nil
}

// RestoreState installs variable values into the workers hosting them —
// the push half of resume-from-checkpoint, also used to seed initial
// variable values. Shards are re-mapped by variable name, so state captured
// under one worker set restores onto another. A variable no worker hosts is
// an error: the state and the graph disagree about what exists.
func (c *TCPCluster) RestoreState(state map[string]*tensor.Tensor) error {
	if len(state) == 0 {
		return nil
	}
	if err := c.checkVarOwnership(); err != nil {
		return err
	}
	c.ckptGate.Lock()
	defer c.ckptGate.Unlock()
	routed := map[string]bool{}
	for _, w := range c.workers {
		shard := map[string]*tensor.Tensor{}
		for _, name := range c.hosted[w] {
			if t, ok := state[name]; ok {
				shard[name] = t
				routed[name] = true
			}
		}
		if len(shard) == 0 {
			continue
		}
		cl, _, err := c.fleet.client(w)
		if err != nil {
			return fmt.Errorf("distrib: restore: %w", err)
		}
		if err := cl.Restore(c.gid, cluster.SnapshotsToWire(shard)); err != nil {
			return fmt.Errorf("distrib: restore: %w", err)
		}
	}
	for name := range state {
		if !routed[name] {
			return fmt.Errorf("distrib: restore: no worker hosts variable %q", name)
		}
	}
	return nil
}

// Close releases the graph on every worker. The fleet stays open for other
// clusters.
func (c *TCPCluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, w := range c.workers {
		if cl := c.fleet.liveClient(w); cl != nil {
			cl.Release(c.gid)
		}
	}
}
