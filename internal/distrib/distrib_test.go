package distrib

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestSimpleCrossDeviceEdge(t *testing.T) {
	b := core.NewBuilder()
	var x, y graph.Output
	b.WithDevice("dev:0", func() { x = b.Scalar(3) })
	b.WithDevice("dev:1", func() { y = b.Square(x) }) // crosses dev0 -> dev1
	c, err := NewCluster(b, []graph.Output{y}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Partitions()) != 2 {
		t.Fatalf("partitions: %v", c.Partitions())
	}
	out, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ScalarValue() != 9 {
		t.Fatalf("got %v", out[0])
	}
}

func TestDistributedWhileLoop(t *testing.T) {
	// Loop driver on dev:0; the body's op on dev:1 (the Figure 6 setup).
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice("dev:0", func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(10)) },
			func(v []graph.Output) []graph.Output {
				var r graph.Output
				b.WithDevice("dev:1", func() {
					r = b.Add(v[0], b.Scalar(1)) // Op on device B
				})
				return []graph.Output{r}
			},
			core.WhileOpts{},
		)
	})
	c, err := NewCluster(b, []graph.Output{outs[0]}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ScalarValue() != 10 {
		t.Fatalf("got %v, want 10", out[0])
	}
}

func TestDistributedLoopManyDevices(t *testing.T) {
	// A chain of ops across 4 devices inside one loop.
	b := core.NewBuilder()
	devs := []string{"dev:0", "dev:1", "dev:2", "dev:3"}
	var outs []graph.Output
	b.WithDevice(devs[0], func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(6)) },
			func(v []graph.Output) []graph.Output {
				cur := v[0]
				for _, d := range devs[1:] {
					b.WithDevice(d, func() {
						cur = b.Add(cur, b.Scalar(0.25))
					})
				}
				b.WithDevice(devs[0], func() {
					cur = b.Add(cur, b.Scalar(0.25))
				})
				return []graph.Output{cur}
			},
			core.WhileOpts{},
		)
	})
	c, err := NewCluster(b, []graph.Output{outs[0]}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ScalarValue() != 6 {
		t.Fatalf("got %v, want 6", out[0])
	}
}

func TestDistributedCondDeadnessPropagation(t *testing.T) {
	// The untaken branch's op lives on another device: an is_dead signal
	// must cross the network so the remote Recv is reclaimed (§4.4).
	for _, taken := range []bool{true, false} {
		b := core.NewBuilder()
		var outs []graph.Output
		b.WithDevice("dev:0", func() {
			p := b.Placeholder("p")
			x := b.Scalar(5)
			outs = b.Cond(p,
				func() []graph.Output {
					var r graph.Output
					b.WithDevice("dev:1", func() { r = b.Square(x) })
					// Bring it back to dev:0.
					var back graph.Output
					b.WithDevice("dev:0", func() { back = b.Identity(r) })
					return []graph.Output{back}
				},
				func() []graph.Output { return []graph.Output{b.Neg(x)} },
			)
		})
		c, err := NewCluster(b, []graph.Output{outs[0]}, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Run(map[string]*tensor.Tensor{"p": tensor.ScalarBool(taken)})
		if err != nil {
			t.Fatalf("taken=%v: %v", taken, err)
		}
		want := 25.0
		if !taken {
			want = -5
		}
		if out[0].ScalarValue() != want {
			t.Fatalf("taken=%v: got %v want %v", taken, out[0], want)
		}
	}
}

func TestMultipleStepsReuseCluster(t *testing.T) {
	b := core.NewBuilder()
	var y graph.Output
	b.WithDevice("dev:0", func() {
		x := b.Placeholder("x")
		b.WithDevice("dev:1", func() { y = b.Square(x) })
	})
	c, err := NewCluster(b, []graph.Output{y}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1.0; i <= 3; i++ {
		out, err := c.Run(map[string]*tensor.Tensor{"x": tensor.Scalar(i)})
		if err != nil {
			t.Fatal(err)
		}
		if out[0].ScalarValue() != i*i {
			t.Fatalf("step %v: got %v", i, out[0])
		}
	}
}

func TestLatencyInjectionSlowsSteps(t *testing.T) {
	build := func() (*core.Builder, graph.Output) {
		b := core.NewBuilder()
		var y graph.Output
		b.WithDevice("dev:0", func() {
			x := b.Scalar(2)
			b.WithDevice("dev:1", func() { y = b.Square(x) })
		})
		return b, y
	}
	run := func(lat time.Duration) time.Duration {
		b, y := build()
		c, err := NewCluster(b, []graph.Output{y}, nil, Options{Latency: lat})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := c.Run(nil); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	fast := run(0)
	slow := run(20 * time.Millisecond)
	if slow < fast+10*time.Millisecond {
		t.Fatalf("latency not applied: fast=%v slow=%v", fast, slow)
	}
}

func TestVariablesAcrossDistributedSteps(t *testing.T) {
	b := core.NewBuilder()
	var read graph.Output
	var incNode *graph.Node
	b.WithDevice("dev:0", func() {
		b.Variable("w", tensor.Scalar(0))
		incNode = b.OpNode("AssignAdd", "", map[string]any{"var": "w"}, b.Scalar(1))
		read = b.ReadVariable("w")
		read = b.Identity(read)
	})
	c, err := NewCluster(b, []graph.Output{read}, []*graph.Node{incNode}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InitVariables(); err != nil {
		t.Fatal(err)
	}
	// Each step increments and reads; the read must see the update since
	// pruning keeps both and variables are session-shared. Note the read
	// and the increment race within a step (no control edge), so just
	// check monotone growth across steps.
	var last float64 = -1
	for i := 0; i < 3; i++ {
		out, err := c.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[0].ScalarValue() < last {
			t.Fatalf("variable went backwards: %v -> %v", last, out[0])
		}
		last = out[0].ScalarValue()
	}
}

func TestNestedCrossDeviceLoopRejected(t *testing.T) {
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice("dev:0", func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(2)) },
			func(v []graph.Output) []graph.Output {
				inner := b.While(
					[]graph.Output{v[0]},
					func(iv []graph.Output) graph.Output { return b.Less(iv[0], b.Scalar(3)) },
					func(iv []graph.Output) []graph.Output {
						var r graph.Output
						b.WithDevice("dev:1", func() { r = b.Add(iv[0], b.Scalar(1)) })
						return []graph.Output{r}
					},
					core.WhileOpts{Name: "inner"},
				)
				return []graph.Output{inner[0]}
			},
			core.WhileOpts{},
		)
	})
	_, err := NewCluster(b, []graph.Output{outs[0]}, nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "nested") {
		t.Fatalf("want nested-loop rejection, got %v", err)
	}
}

func TestCrossDeviceControlEdgeRouted(t *testing.T) {
	// A control edge across devices is rewritten through a Send/Recv of
	// the source's data output.
	b := core.NewBuilder()
	var a, c2 *graph.Node
	b.WithDevice("dev:0", func() {
		a = b.OpNode("Const", "", map[string]any{"value": tensor.Scalar(1)})
	})
	b.WithDevice("dev:1", func() {
		c2 = b.OpNode("Const", "", map[string]any{"value": tensor.Scalar(2)})
	})
	c2.AddControlInput(a)
	c, err := NewCluster(b, []graph.Output{c2.Out(0)}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ScalarValue() != 2 {
		t.Fatalf("got %v", out[0])
	}
}

func TestControlEdgeFromNoOpRejected(t *testing.T) {
	b := core.NewBuilder()
	var a, c2 *graph.Node
	b.WithDevice("dev:0", func() {
		a = b.OpNode("NoOp", "", nil)
	})
	b.WithDevice("dev:1", func() {
		c2 = b.OpNode("Const", "", map[string]any{"value": tensor.Scalar(2)})
	})
	c2.AddControlInput(a)
	_, err := NewCluster(b, []graph.Output{c2.Out(0)}, nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "no data output") {
		t.Fatalf("want no-data-output rejection, got %v", err)
	}
}
