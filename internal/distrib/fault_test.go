package distrib

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// counterSpec is the canonical stateful job: the hop loop's result (== the
// fed limit) accumulates into the session variable "acc", so after step k
// the fetch is k*limit — the whole step history in one number.
func counterSpec(limit float64) JobSpec {
	return JobSpec{
		Build: func(workers []string) (*core.Builder, []graph.Output, error) {
			b, outs := cluster.BuildCounterJob(workers)
			return b, outs, b.Err()
		},
		Init: map[string]*tensor.Tensor{"acc": tensor.Scalar(0)},
		Feeds: func(step uint64) map[string]*tensor.Tensor {
			return map[string]*tensor.Tensor{"limit": tensor.Scalar(limit)}
		},
	}
}

// TestClusterCheckpointReplay exercises the raw driver API: checkpoint at a
// step boundary, keep stepping, then roll back to the checkpoint and verify
// the replayed steps reproduce the original run's fetches exactly.
func TestClusterCheckpointReplay(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	dir := t.TempDir()
	b, outs := cluster.BuildCounterJob([]string{"wA", "wB"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if err := tc.RestoreState(map[string]*tensor.Tensor{"acc": tensor.Scalar(0)}); err != nil {
		t.Fatal(err)
	}

	feeds := map[string]*tensor.Tensor{"limit": tensor.Scalar(4)}
	run := func(n int) []float64 {
		var got []float64
		for i := 0; i < n; i++ {
			vals, err := tc.Run(feeds)
			if err != nil {
				t.Fatalf("step: %v", err)
			}
			got = append(got, vals[0].ScalarValue())
		}
		return got
	}

	run(3) // steps 1..3: acc = 4, 8, 12
	ckStep, err := tc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckStep != 3 {
		t.Fatalf("checkpoint at step %d, want 3", ckStep)
	}
	original := run(2) // steps 4..5: acc = 16, 20

	// Roll back: restore the checkpoint into a freshly resumed cluster.
	tc.Close()
	resumed, err := fleet.Resume(counterSpec(4), TCPOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Step() != 3 {
		t.Fatalf("resumed at step %d, want 3", resumed.Step())
	}
	tc = resumed
	replayed := run(2)
	for i := range original {
		if replayed[i] != original[i] {
			t.Fatalf("replayed step %d: %v, want %v (rollback not bit-identical)", i+4, replayed[i], original[i])
		}
	}
}

// TestResumeAfterFullRestart kills every daemon and the fleet, restarts the
// daemons at the same control addresses, and resumes from the on-disk
// checkpoint — the process-death recovery story end to end.
func TestResumeAfterFullRestart(t *testing.T) {
	workers, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	spec := counterSpec(5)
	opts := TCPOptions{CheckpointDir: dir, CheckpointEvery: 3}
	tc, err := fleet.startJobCluster(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 6; s++ { // auto-checkpoints at 3 and 6
		if _, err := tc.Run(spec.Feeds(uint64(s))); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}

	// Everything dies.
	tc.Close()
	fleet.Close()
	for _, w := range workers {
		w.Close()
	}

	// Daemons restart at the same control addresses; a new driver resumes.
	for i := range workers {
		w, err := cluster.NewWorker(workerName(i), addrs[i], "127.0.0.1:0")
		if err != nil {
			t.Fatalf("restart worker %d: %v", i, err)
		}
		workers[i] = w
		t.Cleanup(w.Close)
	}
	fleet2, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet2.Close()
	tc2, err := fleet2.Resume(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tc2.Close()
	if tc2.Step() != 6 {
		t.Fatalf("resumed at step %d, want 6", tc2.Step())
	}
	vals, err := tc2.Run(spec.Feeds(7))
	if err != nil {
		t.Fatalf("step 7 after restart: %v", err)
	}
	if got := vals[0].ScalarValue(); got != 35 { // 7 steps * limit 5
		t.Fatalf("step 7 fetch %v, want 35 (state not restored)", got)
	}
}

// TestResumeRemapsShards checkpoints on {wA, wB} with the accumulator
// hosted on wB, then resumes on {wA} alone: the dead worker's shard must be
// re-mapped to a surviving worker by variable name.
func TestResumeRemapsShards(t *testing.T) {
	workers, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	dir := t.TempDir()
	// Reverse placement: with both workers live the job drives on wB.
	spec := counterSpec(2)
	spec.Build = func(ws []string) (*core.Builder, []graph.Output, error) {
		rev := make([]string, len(ws))
		for i, w := range ws {
			rev[len(ws)-1-i] = w
		}
		b, outs := cluster.BuildCounterJob(rev)
		return b, outs, b.Err()
	}
	opts := TCPOptions{CheckpointDir: dir}
	tc, err := fleet.startJobCluster(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 4; s++ {
		if _, err := tc.Run(spec.Feeds(uint64(s))); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	if _, err := tc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tc.Close()

	// wB (the accumulator's host) dies for good. Wait for the fleet to
	// notice (EOF detection on the control conn is asynchronous).
	workers[1].Close()
	for i := 0; fleet.Live("wB") && i < 100; i++ {
		time.Sleep(20 * time.Millisecond)
	}

	tc2, err := fleet.Resume(spec, opts)
	if err != nil {
		t.Fatalf("resume without wB: %v", err)
	}
	defer tc2.Close()
	vals, err := tc2.Run(spec.Feeds(5))
	if err != nil {
		t.Fatalf("step 5 on survivors: %v", err)
	}
	if got := vals[0].ScalarValue(); got != 10 { // 5 steps * limit 2
		t.Fatalf("step 5 fetch %v, want 10 (wB's shard not re-mapped to wA)", got)
	}
}

// TestRunJobKillRestart is the in-test chaos scenario: a 40-step job with a
// daemon killed and restarted mid-run must complete with OnStep values
// identical to an undisturbed run — §3's recovery contract, bit for bit.
func TestRunJobKillRestart(t *testing.T) {
	const steps, limit = 40, 3

	// Baseline: undisturbed run.
	baseline := make(map[uint64]float64)
	{
		_, addrs := startWorkers(t, 2)
		fleet, err := Dial(addrs...)
		if err != nil {
			t.Fatal(err)
		}
		defer fleet.Close()
		spec := counterSpec(limit)
		spec.OnStep = func(step uint64, vals []*tensor.Tensor) error {
			baseline[step] = vals[0].ScalarValue()
			return nil
		}
		if _, err := RunJob(context.Background(), fleet, spec, JobOptions{
			Steps: steps,
			TCP:   TCPOptions{CheckpointDir: t.TempDir(), CheckpointEvery: 10},
		}); err != nil {
			t.Fatalf("baseline run: %v", err)
		}
	}

	// Chaos run: kill wB mid-run, restart it shortly after.
	workers, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	var mu sync.Mutex
	got := make(map[uint64]float64)
	rebuilds := 0
	killed := make(chan struct{})
	spec := counterSpec(limit)
	spec.OnStep = func(step uint64, vals []*tensor.Tensor) error {
		mu.Lock()
		defer mu.Unlock()
		v := vals[0].ScalarValue()
		if prev, seen := got[step]; seen && prev != v {
			t.Errorf("step %d replayed with %v, first saw %v", step, v, prev)
		}
		got[step] = v
		if step == steps/2 {
			select {
			case <-killed:
			default:
				close(killed)
			}
		}
		return nil
	}
	spec.OnRebuild = func(ws []string, from uint64) {
		mu.Lock()
		rebuilds++
		mu.Unlock()
		t.Logf("rebuilt over %v from step %d", ws, from)
	}

	go func() {
		<-killed
		ctrlAddr := workers[1].Addr()
		workers[1].Close()
		time.Sleep(300 * time.Millisecond) // dcfvet:allow testsleep=simulated worker downtime
		w2, err := cluster.NewWorker("wB", ctrlAddr, "127.0.0.1:0")
		if err != nil {
			t.Errorf("restart wB: %v", err)
			return
		}
		mu.Lock()
		workers[1] = w2
		mu.Unlock()
	}()

	final, err := RunJob(context.Background(), fleet, spec, JobOptions{
		Steps:          steps,
		TCP:            TCPOptions{CheckpointDir: t.TempDir(), CheckpointEvery: 10},
		MaxStepRetries: 8,
		RetryBackoff:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if got := final[0].ScalarValue(); got != float64(steps*limit) {
		t.Fatalf("final fetch %v, want %v", got, steps*limit)
	}
	mu.Lock()
	defer mu.Unlock()
	for step, want := range baseline {
		if got[step] != want {
			t.Fatalf("step %d: chaos run fetched %v, baseline %v (recovery not bit-identical)", step, got[step], want)
		}
	}
	if rebuilds == 0 {
		t.Fatal("the kill never triggered a rebuild — chaos scenario did not exercise recovery")
	}
}

// TestRunJobAbsorbsJoin starts a job on one worker, admits a second daemon
// mid-run via Fleet.Add, and verifies the job re-partitions onto the grown
// worker set at a checkpoint boundary and still produces correct values.
func TestRunJobAbsorbsJoin(t *testing.T) {
	const steps, limit = 30, 2
	_, addrs := startWorkers(t, 1)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// The joiner daemon, not yet in the fleet.
	joiner, err := cluster.NewWorker("wB", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)

	var mu sync.Mutex
	var rebuiltOver []string
	spec := counterSpec(limit)
	spec.OnStep = func(step uint64, vals []*tensor.Tensor) error {
		if want := float64(step * limit); vals[0].ScalarValue() != want {
			t.Errorf("step %d: %v, want %v", step, vals[0].ScalarValue(), want)
		}
		if step == steps/2 {
			if err := fleet.Add(joiner.Addr()); err != nil {
				t.Errorf("join: %v", err)
			}
		}
		return nil
	}
	spec.OnRebuild = func(ws []string, from uint64) {
		mu.Lock()
		rebuiltOver = append([]string(nil), ws...)
		mu.Unlock()
	}

	final, err := RunJob(context.Background(), fleet, spec, JobOptions{
		Steps: steps,
		TCP:   TCPOptions{CheckpointDir: t.TempDir(), CheckpointEvery: 5},
	})
	if err != nil {
		t.Fatalf("job with join: %v", err)
	}
	if got := final[0].ScalarValue(); got != float64(steps*limit) {
		t.Fatalf("final fetch %v, want %v", got, steps*limit)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rebuiltOver) != 2 {
		t.Fatalf("job never re-partitioned onto the joined worker (last rebuild over %v)", rebuiltOver)
	}
}
