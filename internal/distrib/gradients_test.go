package distrib

import (
	"testing"

	"repro/internal/autodiff"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestDistributedGradientLoop differentiates a while-loop whose body spans
// two devices and runs the result on the cluster: the forward loop, its
// state-saving stack pushes, and the gradient loop are all partitioned,
// with control-loop state machines driving each participant (§4.4 + §5.1
// combined — "these subgraphs can also be partitioned and executed on a
// set of heterogeneous devices").
func TestDistributedGradientLoop(t *testing.T) {
	build := func(multiDevice bool) (*core.Builder, graph.Output, graph.Output) {
		b := core.NewBuilder()
		devBody := "dev:0"
		if multiDevice {
			devBody = "dev:1"
		}
		var x graph.Output
		var y graph.Output
		b.WithDevice("dev:0", func() {
			x = b.Placeholder("x")
			w := b.Const(tensor.FromFloats([]float64{0.5, 0.1, -0.2, 0.8}, 2, 2))
			outs := b.While(
				[]graph.Output{b.Scalar(0), x},
				func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(3)) },
				func(v []graph.Output) []graph.Output {
					var next graph.Output
					b.WithDevice(devBody, func() {
						next = b.Tanh(b.MatMul(v[1], w))
					})
					return []graph.Output{b.Add(v[0], b.Scalar(1)), next}
				},
				core.WhileOpts{},
			)
			y = b.ReduceSum(outs[1], nil, false)
		})
		grads, err := autodiff.Gradients(b, y, []graph.Output{x}, autodiff.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return b, y, grads[0]
	}

	feed := map[string]*tensor.Tensor{"x": tensor.FromFloats([]float64{1, 2, 3, 4}, 2, 2)}

	// Reference: everything on one device.
	bRef, _, gRef := build(false)
	ref, err := core.NewSession(bRef).Run1(feed, gRef)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: body (and its gradient ops, colocated) on dev:1.
	bDist, _, gDist := build(true)
	c, err := NewCluster(bDist, []graph.Output{gDist}, nil, Options{DefaultDevice: "dev:0"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(feed)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got[0], ref, 1e-9) {
		t.Fatalf("distributed gradient differs:\n got %v\nwant %v", got[0], ref)
	}
}
