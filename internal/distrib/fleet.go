package distrib

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
)

// Elastic membership: a Fleet is not a fixed set. Daemons join (Add) and
// leave (Remove, or just die) while jobs run; the job layer (RunJob)
// rebuilds clusters over the live worker set at checkpoint boundaries, so
// a membership change never needs fine-grained graph surgery — the paper's
// coarse-grained model extends naturally from failure recovery to elastic
// scaling, because both are "roll back to the last checkpoint and rebuild".

// probeTimeout bounds the liveness probe's redial. Deliberately much
// shorter than the control handshake timeout: probes run on the recovery
// path, where waiting the full handshake window on a daemon that is truly
// dead just prolongs the outage.
const probeTimeout = 1500 * time.Millisecond

// Generation returns the membership generation: it increments on every
// Add/Remove. Job runners snapshot it and compare at checkpoint boundaries
// to notice joins without polling every worker every step.
func (f *Fleet) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.generation
}

// Add dials a new worker daemon and admits it to the fleet. The new
// worker's name must be unique. Existing clusters are unaffected (they run
// on the worker set they were partitioned over); the join takes effect when
// a job runner next rebuilds over the fleet.
func (f *Fleet) Add(addr string) error {
	c, err := cluster.DialWorker(addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		c.Close()
		return fmt.Errorf("distrib: fleet closed")
	}
	if _, dup := f.workers[c.Name()]; dup {
		c.Close()
		return fmt.Errorf("distrib: fleet already has a worker named %q", c.Name())
	}
	f.workers[c.Name()] = &fleetWorker{addr: addr, client: c, epoch: 1}
	f.generation++
	return nil
}

// Remove retires a worker from the fleet and closes its control
// connection. Clusters still registered on it keep their registrations
// until released; steps that route to it afterwards fail (and the job
// layer rebuilds without it).
func (f *Fleet) Remove(name string) error {
	f.mu.Lock()
	w, ok := f.workers[name]
	if ok {
		delete(f.workers, name)
		f.generation++
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("distrib: unknown worker %q", name)
	}
	w.mu.Lock()
	if w.client != nil {
		w.client.Close()
	}
	w.mu.Unlock()
	return nil
}

// Live reports whether the named worker is reachable right now. A live
// control connection answers immediately; otherwise one short redial is
// attempted (and kept, on success — the probe doubles as the reconnect).
// Probing a dead daemon costs at most probeTimeout.
func (f *Fleet) Live(name string) bool {
	f.mu.Lock()
	w := f.workers[name]
	closed := f.closed
	f.mu.Unlock()
	if w == nil || closed {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.client != nil && w.client.Alive() {
		return true
	}
	fresh, err := cluster.DialWorkerTimeout(w.addr, probeTimeout)
	if err != nil {
		return false
	}
	if fresh.Name() != name {
		fresh.Close()
		return false
	}
	// Same closed-race discipline as Fleet.client: never install a fresh
	// connection into a fleet that closed underneath the probe.
	f.mu.Lock()
	closed = f.closed
	f.mu.Unlock()
	if closed {
		fresh.Close()
		return false
	}
	if w.client != nil {
		w.client.Close()
	}
	w.client = fresh
	w.epoch++
	return true
}

// LiveWorkers returns the sorted names of every worker that answers a
// liveness probe — the worker set a job rebuild partitions over.
func (f *Fleet) LiveWorkers() []string {
	var live []string
	for _, name := range f.Workers() {
		if f.Live(name) {
			live = append(live, name)
		}
	}
	sort.Strings(live)
	return live
}
