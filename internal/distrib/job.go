package distrib

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// The job layer is the paper's §3 failure model end to end: an iterative
// job runs between distributed checkpoints of its session variables, and
// every failure — a worker crash, a torn connection, an aborted step — is
// handled one way: roll back to the last checkpoint, rebuild the cluster
// over the workers that are alive now, restore, and replay. There is no
// fine-grained recovery inside a step; a partially-run step may have
// mutated variables, so a failed step is never naively retried on the
// same state.

// JobSpec describes an iterative job abstractly enough to survive
// rebuilds: the graph is a function of the live worker set, not a fixed
// artifact, so a job that loses or gains workers re-partitions itself.
type JobSpec struct {
	// Build constructs the graph for a given (sorted, non-empty) worker
	// set. Device placement must only name workers from the slice. Build
	// must be deterministic: the same worker set yields the same graph.
	Build func(workers []string) (*core.Builder, []graph.Output, error)
	// Init seeds the session variables before step 1 (checkpoint zero).
	// Stateful kernels like AssignAdd refuse uninitialized variables, so
	// any variable the graph updates incrementally must appear here.
	Init map[string]*tensor.Tensor
	// Feeds supplies the placeholder feeds for a step (nil for none).
	Feeds func(step uint64) map[string]*tensor.Tensor
	// OnStep observes each completed step's fetch values. Delivery is
	// at-least-once: a rollback replays steps after the checkpoint, and
	// OnStep fires again for each (with identical values — that is the
	// recovery contract the chaos tests assert).
	OnStep func(step uint64, vals []*tensor.Tensor) error
	// OnRebuild, if set, observes every recovery/rebuild: the worker set
	// the job now runs on and the step it resumed from.
	OnRebuild func(workers []string, fromStep uint64)
}

// JobOptions bounds a job run.
type JobOptions struct {
	// Steps is the total number of steps the job runs.
	Steps uint64
	// TCP configures each built cluster. CheckpointDir must be set (the
	// rollback path needs somewhere to roll back to); CheckpointEvery
	// defaults to 50.
	TCP TCPOptions
	// MaxStepRetries caps consecutive rollback attempts before the job
	// fails for good (default 3). The counter resets after any
	// successfully replayed step, so a long job survives many separated
	// failures but not a persistent one.
	MaxStepRetries int
	// RetryBackoff scales the pause before the n-th consecutive rollback
	// (default 250ms): attempt n sleeps n*RetryBackoff, giving a
	// restarting daemon time to come back before the probe writes it off.
	RetryBackoff time.Duration
}

// Resume builds a cluster for the job over the fleet's live workers and
// restores the most recent checkpoint in opts.CheckpointDir: the graph is
// re-registered (fresh graph id, fresh partitioning over the live set),
// each worker's shard is re-mapped by variable name and pushed, and the
// step counter is positioned so the next step is checkpointStep+1. With no
// checkpoint on disk it returns os.ErrNotExist and the caller starts
// fresh. A manifest whose graph signature does not match the rebuilt
// graph's is refused.
func (f *Fleet) Resume(spec JobSpec, opts TCPOptions) (*TCPCluster, error) {
	if opts.CheckpointDir == "" {
		return nil, fmt.Errorf("distrib: Resume needs TCPOptions.CheckpointDir")
	}
	m, stepDir, err := checkpoint.Latest(opts.CheckpointDir)
	if err != nil {
		return nil, err
	}
	c, err := f.buildJobCluster(spec, opts)
	if err != nil {
		return nil, err
	}
	if c.Sig() != m.Sig {
		c.Close()
		return nil, fmt.Errorf("distrib: checkpoint %s (sig %016x) does not match the graph being resumed (sig %016x)",
			stepDir, m.Sig, c.Sig())
	}
	state, err := checkpoint.LoadState(stepDir, m)
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := c.RestoreState(state); err != nil {
		c.Close()
		return nil, err
	}
	c.SetStep(m.Step)
	return c, nil
}

// buildJobCluster partitions the job's graph over the currently live
// workers and registers it.
func (f *Fleet) buildJobCluster(spec JobSpec, opts TCPOptions) (*TCPCluster, error) {
	workers := f.LiveWorkers()
	if len(workers) == 0 {
		return nil, fmt.Errorf("distrib: no live workers")
	}
	b, fetches, err := spec.Build(workers)
	if err != nil {
		return nil, err
	}
	return f.NewCluster(b, fetches, nil, opts)
}

// startJobCluster resumes from the latest checkpoint if one exists, and
// otherwise starts fresh: build, seed Init, and write checkpoint zero so
// the very first failure already has a rollback target.
func (f *Fleet) startJobCluster(spec JobSpec, opts TCPOptions) (*TCPCluster, error) {
	c, err := f.Resume(spec, opts)
	if err == nil {
		return c, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	c, err = f.buildJobCluster(spec, opts)
	if err != nil {
		return nil, err
	}
	if err := c.RestoreState(spec.Init); err != nil {
		c.Close()
		return nil, err
	}
	if _, err := c.Checkpoint(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// RunJob drives a job to completion with fault tolerance: steps run until
// opts.Steps, checkpoints land every CheckpointEvery steps, and any step
// failure triggers rollback-restore-replay over whatever workers are live.
// Membership changes (Fleet.Add/Remove) are absorbed at the next
// checkpoint boundary: the job checkpoints, rebuilds over the new worker
// set, and continues. RunJob returns the final step's fetch values.
func RunJob(ctx context.Context, f *Fleet, spec JobSpec, opts JobOptions) ([]*tensor.Tensor, error) {
	if opts.TCP.CheckpointDir == "" {
		return nil, fmt.Errorf("distrib: RunJob needs TCPOptions.CheckpointDir")
	}
	if opts.TCP.CheckpointEvery == 0 {
		opts.TCP.CheckpointEvery = 50
	}
	if opts.MaxStepRetries == 0 {
		opts.MaxStepRetries = 3
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 250 * time.Millisecond
	}

	c, err := f.startJobCluster(spec, opts.TCP)
	if err != nil {
		return nil, err
	}
	defer func() { c.Close() }()

	// rebuild rolls the job back to the last checkpoint: tear the current
	// cluster down, rebuild over the live worker set, restore, replay.
	rebuild := func() error {
		c.Close()
		fresh, err := f.Resume(spec, opts.TCP)
		if err != nil {
			return err
		}
		c = fresh
		if spec.OnRebuild != nil {
			spec.OnRebuild(append([]string(nil), c.workers...), c.Step())
		}
		return nil
	}

	gen := f.Generation()
	retries := 0
	var last []*tensor.Tensor
	for c.Step() < opts.Steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		step := c.Step() + 1
		var feeds map[string]*tensor.Tensor
		if spec.Feeds != nil {
			feeds = spec.Feeds(step)
		}
		vals, err := c.RunCtx(ctx, feeds)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			retries++
			if retries > opts.MaxStepRetries {
				return nil, fmt.Errorf("distrib: job failed at step %d after %d rollbacks: %w", step, retries-1, err)
			}
			// Give a crashed-but-restarting daemon a beat to come back;
			// the probe in LiveWorkers writes off whoever is still down.
			time.Sleep(time.Duration(retries) * opts.RetryBackoff)
			if rerr := rebuild(); rerr != nil {
				return nil, fmt.Errorf("distrib: rollback after step %d failure: %w (step error: %v)", step, rerr, err)
			}
			continue
		}
		retries = 0
		last = vals
		if spec.OnStep != nil {
			if err := spec.OnStep(step, vals); err != nil {
				return nil, err
			}
		}
		// Absorb joins/leaves at checkpoint boundaries: force a checkpoint
		// of the current state, then rebuild over the new membership.
		if g := f.Generation(); g != gen {
			gen = g
			if _, err := c.Checkpoint(); err != nil {
				return nil, fmt.Errorf("distrib: checkpoint before membership change: %w", err)
			}
			if err := rebuild(); err != nil {
				return nil, fmt.Errorf("distrib: rebuild for membership change: %w", err)
			}
		}
	}
	return last, nil
}
