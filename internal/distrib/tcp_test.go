package distrib

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rendezvous"
)

// TestTCPDistributedLoop runs the Figure 6 scenario over real TCP sockets:
// two workers (as two rendezvous servers within this test), the loop driver
// on worker A and the body op on worker B, coordinating only through
// Send/Recv — the same setup cmd/dcfworker runs as separate OS processes.
func TestTCPDistributedLoop(t *testing.T) {
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice("wA/cpu", func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(7)) },
			func(v []graph.Output) []graph.Output {
				var r graph.Output
				b.WithDevice("wB/cpu", func() {
					r = b.Add(v[0], b.Scalar(1))
				})
				return []graph.Output{r}
			},
			core.WhileOpts{Name: "tcp_loop"},
		)
	})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	workerOf := func(dev string) string {
		if i := strings.IndexByte(dev, '/'); i >= 0 {
			return dev[:i]
		}
		return dev
	}
	res, err := partition.Partition(b.G, core.Prune(b.G, outs, nil), workerOf)
	if err != nil {
		t.Fatal(err)
	}

	rvA, err := rendezvous.NewNet("wA", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rvA.Close()
	rvB, err := rendezvous.NewNet("wB", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rvB.Close()
	rvA.AddPeer("wB", rvB.Addr())
	rvB.AddPeer("wA", rvA.Addr())

	nodesFor := func(worker string) []*graph.Node {
		var mine []*graph.Node
		for dev, nodes := range res.Parts {
			if workerOf(dev) == worker {
				mine = append(mine, nodes...)
			}
		}
		return mine
	}

	var wg sync.WaitGroup
	var resultVal float64
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		ex, err := exec.New(exec.Config{
			Graph: b.G, Nodes: nodesFor("wA"), Fetches: outs, Rendezvous: rvA,
		})
		if err != nil {
			errA = err
			return
		}
		vals, err := ex.Run()
		if err != nil {
			errA = err
			return
		}
		resultVal = vals[0].T.ScalarValue()
	}()
	go func() {
		defer wg.Done()
		ex, err := exec.New(exec.Config{
			Graph: b.G, Nodes: nodesFor("wB"), Rendezvous: rvB,
		})
		if err != nil {
			errB = err
			return
		}
		_, errB = ex.Run()
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("worker errors: A=%v B=%v", errA, errB)
	}
	if resultVal != 7 {
		t.Fatalf("result %v, want 7", resultVal)
	}
}
