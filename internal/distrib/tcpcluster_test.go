package distrib

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// startWorkers launches n in-process worker daemons (real TCP on loopback)
// named w0..w{n-1} and returns them with their control addresses.
func startWorkers(t *testing.T, n int) ([]*cluster.Worker, []string) {
	t.Helper()
	workers := make([]*cluster.Worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker(workerName(i), "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		addrs[i] = w.Addr()
	}
	t.Cleanup(func() {
		for _, w := range workers {
			w.Close()
		}
	})
	return workers, addrs
}

func workerName(i int) string { return "w" + string(rune('A'+i)) }

// TestTCPCluster100Steps is the core acceptance scenario: a driver plus two
// worker daemons run a partitioned while-loop for 100+ consecutive steps,
// each step in its own rendezvous scope, with no cross-step leakage (scope
// tables must not accumulate).
func TestTCPCluster100Steps(t *testing.T) {
	workers, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	b, outs := cluster.BuildHopLoop([]string{"wA", "wB"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	const steps = 101
	for s := 0; s < steps; s++ {
		// Vary the trip count per step: a leaked token from step s would
		// surface as a wrong result in step s+1.
		limit := float64(3 + s%5)
		vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(limit)})
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if got := vals[0].ScalarValue(); got != limit {
			t.Fatalf("step %d: result %v, want %v", s, got, limit)
		}
	}
	// Scopes of completed steps are released as the watermark advances
	// (lag <= the in-flight window, not O(steps)).
	for i, w := range workers {
		if c := w.ScopeCount(); c > 4 {
			t.Fatalf("worker %d holds %d scope tables after %d steps (leak)", i, c, steps)
		}
	}
}

// TestTCPClusterSingleWorker: a one-daemon fleet still terminates (the hop
// loop degenerates to a local increment) — no remote hops, all rendezvous
// routing is worker-local.
func TestTCPClusterSingleWorker(t *testing.T) {
	_, addrs := startWorkers(t, 1)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	b, outs := cluster.BuildHopLoop([]string{"wA"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(9)})
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[0].ScalarValue(); got != 9 {
		t.Fatalf("got %v, want 9", got)
	}
}

// TestTCPClusterFourWorkers runs the loop across four daemons (multi-hop
// body) to cover >2-worker routing and fetch reassembly.
func TestTCPClusterFourWorkers(t *testing.T) {
	_, addrs := startWorkers(t, 4)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	b, outs := cluster.BuildHopLoop([]string{"wA", "wB", "wC", "wD"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	for s := 0; s < 5; s++ {
		vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(6)})
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if got := vals[0].ScalarValue(); got != 6 {
			t.Fatalf("step %d: result %v, want 6", s, got)
		}
	}
}

// TestTCPClusterCancellation: driver-side context cancellation propagates
// to remote partitions as an abort control message — the step fails with
// the cancellation cause, blocked Recvs drain (the step actually returns),
// and the next step runs clean.
func TestTCPClusterCancellation(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	b, outs := cluster.BuildHopLoop([]string{"wA", "wB"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Effectively unbounded loop: only cancellation ends this step.
		_, err := tc.RunCtx(ctx, map[string]*tensor.Tensor{"limit": tensor.Scalar(1e12)})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // dcfvet:allow testsleep=stage the step mid-flight before cancel
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled step succeeded")
		}
		if !strings.Contains(err.Error(), "cancel") {
			t.Fatalf("want cancellation error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled step never returned (blocked Recvs did not drain)")
	}
	// The cluster survives: the next step runs to completion.
	vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(4)})
	if err != nil {
		t.Fatalf("step after cancellation: %v", err)
	}
	if got := vals[0].ScalarValue(); got != 4 {
		t.Fatalf("step after cancellation: %v, want 4", got)
	}
}

// TestTCPClusterWorkerKilledMidStep: killing one worker mid-step fails only
// that step (with an error naming the worker); after the daemon restarts at
// the same control address, the driver redials, re-registers, and the next
// step succeeds.
func TestTCPClusterWorkerKilledMidStep(t *testing.T) {
	workers, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	b, outs := cluster.BuildHopLoop([]string{"wA", "wB"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	// Warm step.
	if _, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(3)}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := tc.RunCtx(context.Background(), map[string]*tensor.Tensor{"limit": tensor.Scalar(1e12)})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // dcfvet:allow testsleep=stage the step mid-flight before kill
	ctrlAddr := workers[1].Addr()
	workers[1].Close() // kill wB mid-step

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("step survived a worker death")
		}
		if !strings.Contains(err.Error(), "wB") && !strings.Contains(err.Error(), "wA") {
			t.Fatalf("error does not identify a worker: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("step never failed after worker death")
	}

	// Restart the daemon at the same control address (fresh data plane).
	w2, err := cluster.NewWorker("wB", ctrlAddr, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("restart worker: %v", err)
	}
	workers[1] = w2
	t.Cleanup(w2.Close)

	vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(5)})
	if err != nil {
		t.Fatalf("step after worker restart: %v", err)
	}
	if got := vals[0].ScalarValue(); got != 5 {
		t.Fatalf("step after restart: %v, want 5", got)
	}
}

// TestTCPClusterMultiDevicePerWorker: a worker may host several devices
// (each its own executor); fetches reassemble in caller order across
// devices and workers.
func TestTCPClusterMultiDevicePerWorker(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	b := core.NewBuilder()
	var a, c, d graph.Output
	b.WithDevice("wA/cpu:0", func() {
		a = b.Add(b.Scalar(1), b.Scalar(2))
	})
	b.WithDevice("wB/cpu:0", func() {
		c = b.Mul(a, b.Scalar(10))
	})
	b.WithDevice("wA/cpu:1", func() {
		d = b.Add(c, b.Scalar(0.5))
	})
	tc, err := fleet.NewCluster(b, []graph.Output{d, a, c}, nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	vals, err := tc.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{30.5, 3, 30}
	for i, w := range want {
		if got := vals[i].ScalarValue(); got != w {
			t.Fatalf("fetch %d: got %v, want %v", i, got, w)
		}
	}
}

// TestTCPClusterInjectedLatency sanity-checks the fabric injection knob:
// with 2ms one-way latency every cross-worker hop pays it, so a 5-iteration
// two-hop loop takes at least ~10ms.
func TestTCPClusterInjectedLatency(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	b, outs := cluster.BuildHopLoop([]string{"wA", "wB"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{Latency: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	start := time.Now()
	vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[0].ScalarValue(); got != 5 {
		t.Fatalf("got %v, want 5", got)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("step took %v; injected latency not applied", d)
	}
}
