package distrib

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestClusterRunCtxCancel cancels a cross-device while loop far too long to
// finish: every partition must stop promptly (the loop driver via the
// dispatcher's cancel poll, the body partition via the rendezvous abort)
// and no executor goroutines may leak.
func TestClusterRunCtxCancel(t *testing.T) {
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice("dev:0", func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(1e12)) },
			func(v []graph.Output) []graph.Output {
				var r graph.Output
				b.WithDevice("dev:1", func() {
					r = b.Add(v[0], b.Scalar(1))
				})
				return []graph.Output{r}
			},
			core.WhileOpts{},
		)
	})
	c, err := NewCluster(b, []graph.Output{outs[0]}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.RunCtx(ctx, nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // dcfvet:allow testsleep=stage the step mid-flight before cancel
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster step did not return after cancel")
	}
	waitGoroutines(t, before)
}

// waitGoroutines polls until the goroutine count settles back to (near)
// the baseline, failing if canceled executors leaked workers.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancel: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
