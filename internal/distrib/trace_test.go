package distrib

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cluster"
	"repro/internal/tensor"
)

// chromeEvent is the subset of the Chrome trace-event schema the merged
// trace must populate.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	PID  int    `json:"pid"`
	ID   string `json:"id"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

// TestRunTracedMergesWorkers is the distributed-tracing acceptance test: a
// traced step over a two-worker partitioned while-loop must come back as
// one Chrome trace with execution spans from every worker on its own
// process track, and with cross-worker Send→Recv flow events whose ids
// pair up across processes.
func TestRunTracedMergesWorkers(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	fleet, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	b, outs := cluster.BuildHopLoop([]string{"wA", "wB"})
	tc, err := fleet.NewCluster(b, outs, nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	feeds := map[string]*tensor.Tensor{"limit": tensor.Scalar(4)}
	if _, err := tc.Run(feeds); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	vals, js, err := tc.RunTraced(context.Background(), feeds)
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	if got := vals[0].ScalarValue(); got != 4 {
		t.Fatalf("traced step result %v, want 4", got)
	}

	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	spansByPID := map[int]int{}
	procNames := map[int]string{}
	sends := map[string]int{} // flow id -> pid of the "s" event
	recvs := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spansByPID[e.PID]++
		case "M":
			if e.Name == "process_name" {
				procNames[e.PID] = e.Args.Name
			}
		case "s":
			sends[e.ID] = e.PID
		case "f":
			recvs[e.ID] = e.PID
		}
	}

	for pid := 1; pid <= 2; pid++ {
		if spansByPID[pid] == 0 {
			t.Errorf("no execution spans for worker pid %d (span counts: %v)", pid, spansByPID)
		}
	}
	names := map[string]bool{}
	for _, n := range procNames {
		names[n] = true
	}
	if !names["wA"] || !names["wB"] {
		t.Errorf("process_name metadata %v, want both wA and wB", procNames)
	}

	// A partitioned hop loop must ship tokens both ways every iteration:
	// demand at least one cross-process matched flow pair.
	matched, cross := 0, 0
	for id, spid := range sends {
		rpid, ok := recvs[id]
		if !ok {
			continue
		}
		matched++
		if rpid != spid {
			cross++
		}
	}
	if matched == 0 {
		t.Errorf("no matched Send→Recv flow pairs (%d sends, %d recvs)", len(sends), len(recvs))
	}
	if cross == 0 {
		t.Errorf("no cross-worker flow pairs: every matched flow stayed on one pid")
	}
}
