// Package distrib is the distributed runtime (§3, §4.4): it partitions a
// graph across devices, hosts one local executor per partition, and runs
// steps in which the executors make progress independently, communicating
// only through Send/Recv — no centralized per-iteration coordination. The
// coordinator (the Run caller) is involved only at step start and at
// completion or failure, as in the paper.
//
// Cluster is the in-process form: partitions run in one process connected
// by a shared rendezvous with configurable injected network latency (the
// benchmarks' deterministic stand-in for the paper's production fabric).
//
// TCPCluster is the multi-process form: Dial connects to generic worker
// daemons (internal/cluster.Worker, the cmd/dcfworker CLI), Fleet.NewCluster
// registers each worker's partitions once (gob-encoded subgraph, plans
// compiled and cached at registration), and RunCtx executes steps whose
// rendezvous keys are scoped per step over the wire; driver-side
// cancellation and worker failures fan out as abort control messages so
// every partition's blocked Recvs drain. See internal/cluster/README.md.
package distrib

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/rendezvous"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// Options configures an in-process cluster.
type Options struct {
	// DefaultDevice places unplaced nodes.
	DefaultDevice string
	// Latency is the simulated one-way network latency between any two
	// devices (0 for none). Applied to every Recv whose Send is remote.
	Latency time.Duration
	// Bandwidth is the simulated network bandwidth in bytes/second
	// (0 = infinite).
	Bandwidth float64
	// WorkerOf maps devices to workers for key routing; defaults to one
	// worker per device (so every cross-device edge pays Latency).
	WorkerOf partition.WorkerOf
	// ParallelIterations overrides the loop window.
	ParallelIterations int
	// Workers sizes the per-step kernel worker pool shared by every
	// partition (0 = GOMAXPROCS; exec.WorkersSpawn = legacy
	// goroutine-per-kernel dispatch). One pool serves the whole step, so
	// an 8-partition cluster draws from a single worker budget instead of
	// oversubscribing the machine with 8 independent pools.
	Workers int
	// Mem and Runner configure per-device memory/runners (may be nil).
	Mem    func(device string) ops.DeviceMem
	Runner func(device string) exec.Runner
}

// Cluster executes a partitioned graph with one executor per device. Like
// TensorFlow, a cluster is specialized to one run signature: the fetches
// and targets are fixed at construction (the graph is pruned to them before
// partitioning) and each Run executes one step.
type Cluster struct {
	b       *core.Builder
	opts    Options
	res     *partition.Result
	fetches []graph.Output

	// fetchDev routes each fetch to the partition owning its node; plans
	// holds one cached executor plan per device (with the partition's
	// fetches baked in), built once at construction so every Run takes
	// the dense fast path.
	fetchDev []string
	plans    map[string]*exec.Plan

	sessRes *ops.Resources
	rng     *tensor.RNG

	step int
	mu   sync.Mutex
}

// NewCluster prunes the builder's graph to the fetches/targets, partitions
// it, and prepares executors.
func NewCluster(b *core.Builder, fetches []graph.Output, targets []*graph.Node, opts Options) (*Cluster, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	if opts.DefaultDevice == "" {
		opts.DefaultDevice = "cpu:0"
	}
	partition.Place(b.G, opts.DefaultDevice)
	nodes := core.Prune(b.G, fetches, targets)
	res, err := partition.Partition(b.G, nodes, opts.WorkerOf)
	if err != nil {
		return nil, err
	}
	if err := partition.Validate(res); err != nil {
		return nil, err
	}
	// Full static verification of the partitioned program: Send/Recv key
	// pairing across partitions and the cross-partition rendezvous-cycle
	// check only make sense here, where every partition is visible.
	if ds := verify.CheckPartitions(b.G, res.Parts); len(ds) != 0 {
		return nil, fmt.Errorf("distrib: partitioned graph failed verification: %w", ds.Err())
	}
	fetchDev := make([]string, len(fetches))
	perDev := map[string][]graph.Output{}
	for i, f := range fetches {
		if f.Node == nil {
			return nil, fmt.Errorf("distrib: invalid fetch %d", i)
		}
		dev := f.Node.Device()
		fetchDev[i] = dev
		perDev[dev] = append(perDev[dev], f)
	}
	plans := make(map[string]*exec.Plan, len(res.Devices))
	for _, dev := range res.Devices {
		p, err := exec.NewPlan(b.G, res.Parts[dev], perDev[dev])
		if err != nil {
			return nil, fmt.Errorf("distrib: partition %q: %w", dev, err)
		}
		plans[dev] = p
	}
	return &Cluster{
		b:        b,
		opts:     opts,
		res:      res,
		fetches:  fetches,
		fetchDev: fetchDev,
		plans:    plans,
		sessRes:  ops.NewResources(),
		rng:      tensor.NewRNG(7),
	}, nil
}

// InitVariables runs the builder's variable initializers locally, sharing
// the cluster's session resources (coarse-grained checkpoint-style setup,
// as in §3's failure model).
func (c *Cluster) InitVariables() error {
	s := core.NewSession(c.b)
	s.SessRes = c.sessRes
	return s.InitVariables()
}

// Partitions returns the device partition sizes (for tests/tools).
func (c *Cluster) Partitions() map[string]int {
	out := map[string]int{}
	for dev, nodes := range c.res.Parts {
		out[dev] = len(nodes)
	}
	return out
}

// Run executes one step: feeds are visible to every partition; the fetches
// fixed at construction may live on any device. Executors run concurrently
// and coordinate only through the rendezvous; the first failure aborts the
// step.
func (c *Cluster) Run(feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	return c.RunCtx(context.Background(), feeds)
}

// RunCtx is Run under a context: when ctx is canceled (deadline, client
// disconnect) every partition's executor stops launching kernels, the
// shared rendezvous aborts so cross-partition Recvs drain instead of
// blocking, and the step returns an error wrapping ctx.Err().
func (c *Cluster) RunCtx(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	fetches := c.fetches
	c.mu.Lock()
	c.step++
	stepID := c.step
	c.mu.Unlock()

	base := rendezvous.NewLocal(c.opts.Latency, c.opts.Bandwidth)
	rv := rendezvous.Scoped(base, fmt.Sprintf("step%d", stepID))

	// One worker pool serves every partition of the step: partitions'
	// kernels draw from a shared budget instead of each executor sizing a
	// private pool to the whole machine. Workers spawn lazily (an
	// all-inline step never starts one) and drain with the step.
	var pool *exec.Pool
	if c.opts.Workers != exec.WorkersSpawn {
		pool = exec.NewPool(c.opts.Workers)
		defer pool.Close()
	}

	type devResult struct {
		dev  string
		vals []ops.Value
		err  error
	}
	results := make(chan devResult, len(c.res.Devices))
	stepRes := ops.NewResources()
	var wg sync.WaitGroup
	for _, dev := range c.res.Devices {
		wg.Add(1)
		go func(dev string) {
			defer wg.Done()
			// The cached plan fixes Nodes and Fetches; only the
			// per-step state varies.
			ex, err := exec.NewFromPlan(c.plans[dev], exec.Config{
				Ctx:                ctx,
				Feeds:              feeds,
				StepRes:            stepRes,
				SessionRes:         c.sessRes,
				RNG:                tensor.NewRNG(uint64(stepID)*1e6 + 17),
				Rendezvous:         rv,
				ParallelIterations: c.opts.ParallelIterations,
				Workers:            c.opts.Workers,
				Pool:               pool,
				Mem:                c.opts.Mem,
				Runner:             c.opts.Runner,
			})
			if err != nil {
				results <- devResult{dev: dev, err: err}
				return
			}
			vals, err := ex.Run()
			results <- devResult{dev: dev, vals: vals, err: err}
		}(dev)
	}

	collected := map[string][]ops.Value{}
	var firstErr error
	for range c.res.Devices {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("distrib: partition %q: %w", r.dev, r.err)
			base.Abort(firstErr)
		}
		collected[r.dev] = r.vals
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Reassemble fetches in caller order.
	idx := map[string]int{}
	out := make([]*tensor.Tensor, len(fetches))
	for i, dev := range c.fetchDev {
		vals := collected[dev]
		j := idx[dev]
		idx[dev] = j + 1
		t, err := vals[j].Tensor()
		if err != nil {
			return nil, fmt.Errorf("distrib: fetch %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}
