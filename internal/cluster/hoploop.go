package cluster

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// BuildHopLoop constructs the canonical multi-worker demo/bench graph: a
// while loop driven on workers[0] whose trip count is the fed "limit"
// placeholder and whose body threads the counter through every other
// worker each iteration — one Send/Recv hop per worker per iteration, the
// Figure 6 scenario generalized to N workers. Each body pass increments
// the counter by exactly one (the per-hop +1s are normalized back on the
// driver), so the loop's single fetch equals the fed limit; a wrong value
// on any step means tokens leaked across steps or hops were lost. With a
// single worker the body increments locally (no hops) so the loop still
// terminates.
func BuildHopLoop(workers []string) (*core.Builder, []graph.Output) {
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice(workers[0]+"/cpu", func() {
		limit := b.Placeholder("limit")
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], limit) },
			func(v []graph.Output) []graph.Output {
				cur := v[0]
				if len(workers) == 1 {
					return []graph.Output{b.Add(cur, b.Scalar(1))}
				}
				for _, w := range workers[1:] {
					w := w
					b.WithDevice(w+"/cpu", func() {
						cur = b.Add(cur, b.Scalar(1))
					})
				}
				if extra := float64(len(workers) - 2); extra > 0 {
					cur = b.Sub(cur, b.Scalar(extra))
				}
				return []graph.Output{cur}
			},
			core.WhileOpts{Name: "hoploop"},
		)
	})
	return b, outs
}
