package cluster

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// BuildHopLoop constructs the canonical multi-worker demo/bench graph: a
// while loop driven on workers[0] whose trip count is the fed "limit"
// placeholder and whose body threads the counter through every other
// worker each iteration — one Send/Recv hop per worker per iteration, the
// Figure 6 scenario generalized to N workers. Each body pass increments
// the counter by exactly one (the per-hop +1s are normalized back on the
// driver), so the loop's single fetch equals the fed limit; a wrong value
// on any step means tokens leaked across steps or hops were lost. With a
// single worker the body increments locally (no hops) so the loop still
// terminates.
// BuildCounterJob is the stateful variant of BuildHopLoop used by the
// fault-tolerance tests and the chaos CI job: the hop loop's result (== the
// fed limit) is accumulated into a session variable "acc" on workers[0],
// and the accumulator's new value is the job's single fetch. After step k
// of a run fed limit L every step, the fetch is k*L — a value that encodes
// the entire step history, so a resumed or replayed run is checkable
// bit-for-bit against an undisturbed one. The "acc" variable must be
// seeded (e.g. distrib.JobSpec.Init) before the first step: AssignAdd
// refuses uninitialized variables by design.
func BuildCounterJob(workers []string) (*core.Builder, []graph.Output) {
	b, outs := BuildHopLoop(workers)
	var fetch graph.Output
	b.WithDevice(workers[0]+"/cpu", func() {
		fetch = b.OpNode("AssignAdd", "acc_add", map[string]any{"var": "acc"}, outs[0]).Out(0)
	})
	return b, []graph.Output{fetch}
}

func BuildHopLoop(workers []string) (*core.Builder, []graph.Output) {
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice(workers[0]+"/cpu", func() {
		limit := b.Placeholder("limit")
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], limit) },
			func(v []graph.Output) []graph.Output {
				cur := v[0]
				if len(workers) == 1 {
					return []graph.Output{b.Add(cur, b.Scalar(1))}
				}
				for _, w := range workers[1:] {
					w := w
					b.WithDevice(w+"/cpu", func() {
						cur = b.Add(cur, b.Scalar(1))
					})
				}
				if extra := float64(len(workers) - 2); extra > 0 {
					cur = b.Sub(cur, b.Scalar(extra))
				}
				return []graph.Output{cur}
			},
			core.WhileOpts{Name: "hoploop"},
		)
	})
	return b, outs
}
