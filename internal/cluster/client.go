package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is the driver's handle on one worker daemon: it multiplexes
// registrations, step launches, and aborts over a single control
// connection, matching asynchronous step responses back to their callers by
// (graph, step). A Client whose connection dies fails every outstanding
// step with the transport error and stays dead; the driver redials a fresh
// one (see distrib.Fleet) and re-registers.
type Client struct {
	addr     string
	name     string
	dataAddr string

	wmu  sync.Mutex // serializes request writes
	conn net.Conn
	enc  *gob.Encoder

	pmu     sync.Mutex
	pending map[stepKey]chan *StepResp
	regCh   chan *RegResp
	ckptCh  chan *CheckpointResp
	restCh  chan *RestoreResp
	traceCh chan *TraceResp
	helloCh chan *HelloResp
	err     error
	done    chan struct{}

	rpcMu sync.Mutex // one synchronous round trip (register/checkpoint/restore) at a time
	wg    sync.WaitGroup
}

type stepKey struct {
	gid  uint64
	step uint64
}

// DialTimeout bounds the control-connection handshake.
const helloTimeout = 10 * time.Second

// DialWorker connects to a worker daemon's control address and performs the
// hello handshake, learning the worker's name and data-plane address.
func DialWorker(addr string) (*Client, error) {
	return DialWorkerTimeout(addr, helloTimeout)
}

// DialWorkerTimeout is DialWorker with a caller-chosen connect/handshake
// bound. Liveness probes use a short timeout so checking a dead daemon does
// not stall recovery for the full default handshake window.
func DialWorkerTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial worker %s: %w", addr, err)
	}
	c := &Client{
		addr:    addr,
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: map[stepKey]chan *StepResp{},
		helloCh: make(chan *HelloResp, 1),
		done:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	if err := c.write(&Envelope{Hello: &HelloReq{}}); err != nil {
		c.Close()
		return nil, err
	}
	select {
	case h := <-c.helloCh:
		// Under pmu: readLoop's failure path reads these via workerLabel
		// concurrently with this assignment.
		c.pmu.Lock()
		c.name = h.Worker
		c.dataAddr = h.DataAddr
		c.pmu.Unlock()
	case <-c.done:
		return nil, fmt.Errorf("cluster: hello to %s: %w", addr, c.Err())
	case <-time.After(timeout):
		c.Close()
		return nil, fmt.Errorf("cluster: hello to %s timed out", addr)
	}
	return c, nil
}

// Name returns the worker's self-reported name.
func (c *Client) Name() string {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.name
}

// Addr returns the control address this client dialed.
func (c *Client) Addr() string { return c.addr }

// DataAddr returns the worker's rendezvous data-plane address.
func (c *Client) DataAddr() string {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.dataAddr
}

// Err returns the transport error that killed the client (nil while alive).
func (c *Client) Err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.err
}

// Alive reports whether the control connection is still usable.
func (c *Client) Alive() bool { return c.Err() == nil }

// Close tears the connection down, failing outstanding calls.
func (c *Client) Close() {
	c.conn.Close()
	c.wg.Wait()
}

func (c *Client) write(env *Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.Err(); err != nil {
		return err
	}
	if err := c.enc.Encode(env); err != nil {
		err = fmt.Errorf("cluster: worker %s: %w", c.workerLabel(), err)
		c.fail(err)
		return err
	}
	return nil
}

func (c *Client) workerLabel() string {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.name != "" {
		return c.name
	}
	return c.addr
}

// fail marks the client dead and delivers the error to every waiter.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.err != nil {
		c.pmu.Unlock()
		return
	}
	c.err = err
	pending := c.pending
	c.pending = map[stepKey]chan *StepResp{}
	reg := c.regCh
	c.regCh = nil
	ckpt := c.ckptCh
	c.ckptCh = nil
	rest := c.restCh
	c.restCh = nil
	tr := c.traceCh
	c.traceCh = nil
	close(c.done)
	c.pmu.Unlock()
	for k, ch := range pending {
		ch <- &StepResp{GraphID: k.gid, Step: k.step, Err: err.Error()}
	}
	if reg != nil {
		reg <- &RegResp{Err: err.Error()}
	}
	if ckpt != nil {
		ckpt <- &CheckpointResp{Err: err.Error()}
	}
	if rest != nil {
		rest <- &RestoreResp{Err: err.Error()}
	}
	if tr != nil {
		tr <- &TraceResp{Err: err.Error()}
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	dec := gob.NewDecoder(c.conn)
	for {
		var env RespEnvelope
		if err := dec.Decode(&env); err != nil {
			c.fail(fmt.Errorf("cluster: worker %s connection lost: %w", c.workerLabel(), err))
			c.conn.Close()
			return
		}
		switch {
		case env.Hello != nil:
			select {
			case c.helloCh <- env.Hello:
			default:
			}
		case env.Reg != nil:
			c.pmu.Lock()
			ch := c.regCh
			c.regCh = nil
			c.pmu.Unlock()
			if ch != nil {
				ch <- env.Reg
			}
		case env.Ckpt != nil:
			c.pmu.Lock()
			ch := c.ckptCh
			c.ckptCh = nil
			c.pmu.Unlock()
			if ch != nil {
				ch <- env.Ckpt
			}
		case env.Restore != nil:
			c.pmu.Lock()
			ch := c.restCh
			c.restCh = nil
			c.pmu.Unlock()
			if ch != nil {
				ch <- env.Restore
			}
		case env.Trace != nil:
			c.pmu.Lock()
			ch := c.traceCh
			c.traceCh = nil
			c.pmu.Unlock()
			if ch != nil {
				ch <- env.Trace
			}
		case env.Step != nil:
			k := stepKey{gid: env.Step.GraphID, step: env.Step.Step}
			c.pmu.Lock()
			ch := c.pending[k]
			delete(c.pending, k)
			c.pmu.Unlock()
			if ch != nil {
				ch <- env.Step
			}
		}
	}
}

// Register installs a graph on the worker and waits for its ack.
func (c *Client) Register(rg *RegisterGraph) error {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	ch := make(chan *RegResp, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return err
	}
	c.regCh = ch
	c.pmu.Unlock()
	if err := c.write(&Envelope{Reg: rg}); err != nil {
		return err
	}
	resp := <-ch
	if resp.Err != "" {
		return fmt.Errorf("cluster: register on %s: %s", c.workerLabel(), resp.Err)
	}
	return nil
}

// Checkpoint asks the worker for its shard of a distributed checkpoint at
// the given (quiesced) step boundary: a snapshot of every session variable
// the graph holds on this worker.
func (c *Client) Checkpoint(gid, step uint64) ([]VarSnapshot, error) {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	ch := make(chan *CheckpointResp, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return nil, err
	}
	c.ckptCh = ch
	c.pmu.Unlock()
	if err := c.write(&Envelope{Ckpt: &CheckpointReq{GraphID: gid, Step: step}}); err != nil {
		return nil, err
	}
	resp := <-ch
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: checkpoint on %s: %s", c.workerLabel(), resp.Err)
	}
	return resp.Vars, nil
}

// Restore installs variable values into the graph's session container on
// the worker (resume-from-checkpoint, or seeding initial state).
func (c *Client) Restore(gid uint64, vars []VarSnapshot) error {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	ch := make(chan *RestoreResp, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return err
	}
	c.restCh = ch
	c.pmu.Unlock()
	if err := c.write(&Envelope{Restore: &RestoreReq{GraphID: gid, Vars: vars}}); err != nil {
		return err
	}
	resp := <-ch
	if resp.Err != "" {
		return fmt.Errorf("cluster: restore on %s: %s", c.workerLabel(), resp.Err)
	}
	return nil
}

// Trace pulls the worker's span timeline for a traced step (one that ran
// with StepReq.Trace set). Call it after the step's response has arrived.
func (c *Client) Trace(gid, step uint64) (*TraceResp, error) {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	ch := make(chan *TraceResp, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return nil, err
	}
	c.traceCh = ch
	c.pmu.Unlock()
	if err := c.write(&Envelope{Trace: &TraceReq{GraphID: gid, Step: step}}); err != nil {
		return nil, err
	}
	resp := <-ch
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: trace on %s: %s", c.workerLabel(), resp.Err)
	}
	return resp, nil
}

// StartStep launches a step; the response (values or error) arrives on the
// returned channel. A dead transport fails the step immediately.
func (c *Client) StartStep(req *StepReq) <-chan *StepResp {
	ch := make(chan *StepResp, 1)
	k := stepKey{gid: req.GraphID, step: req.Step}
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		ch <- &StepResp{GraphID: req.GraphID, Step: req.Step, Err: err.Error()}
		return ch
	}
	c.pending[k] = ch
	c.pmu.Unlock()
	if err := c.write(&Envelope{Step: req}); err != nil {
		// fail() already delivered the error to ch via pending.
		c.pmu.Lock()
		if _, still := c.pending[k]; still {
			delete(c.pending, k)
			c.pmu.Unlock()
			ch <- &StepResp{GraphID: req.GraphID, Step: req.Step, Err: err.Error()}
		} else {
			c.pmu.Unlock()
		}
	}
	return ch
}

// Abort asks the worker to cancel a running step (best effort).
func (c *Client) Abort(gid, step uint64, reason string) {
	_ = c.write(&Envelope{Abort: &AbortReq{GraphID: gid, Step: step, Reason: reason}})
}

// Release discards a graph registration on the worker (best effort).
func (c *Client) Release(gid uint64) {
	_ = c.write(&Envelope{Release: &ReleaseReq{GraphID: gid}})
}
