package cluster

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/rendezvous"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/verify"
)

var debugCluster = os.Getenv("CLUSTER_DEBUG") != ""

// Worker-daemon step metrics on the process registry (exported by the
// health server's /metrics endpoint).
var (
	metricClusterSteps  = metrics.Default().Counter("cluster_steps_total")
	metricClusterTraces = metrics.Default().Counter("cluster_traces_total")
	metricStepDuration  = metrics.Default().Histogram("cluster_step_duration_ns")
)

// traceWindow bounds how many recent step traces a registration retains for
// TraceReq pulls (a driver asks right after the step; anything older is a
// leak, not a debugging aid).
const traceWindow = 8

// Worker is the generic cluster daemon: one OS process hosting any number of
// registered graphs, executing its partitions step by step against cached
// plans, and exchanging tensors with peer workers over the TCP rendezvous.
// It is driven entirely by the control protocol (see proto.go) — it knows
// nothing about the graphs it will run until a driver registers them.
type Worker struct {
	name string
	ctrl net.Listener
	rv   *rendezvous.Net

	mu        sync.Mutex
	graphs    map[uint64]*workerGraph
	conns     map[net.Conn]struct{}
	healthSrv *http.Server
	closed    bool
	wg        sync.WaitGroup

	// traceArm counts steps still to force-trace (the /debug/trace
	// endpoint); each armed step delivers its finished tracer to traceCh.
	traceArm atomic.Int64
	traceCh  chan tracedStep
}

// tracedStep is one armed step's finished trace (see /debug/trace).
type tracedStep struct {
	step uint64
	tr   *trace.Tracer
}

// workerGraph is one cached registration: the rebuilt graph, one compiled
// plan per hosted device, and the per-step bookkeeping that cancellation and
// scope release need.
type workerGraph struct {
	g        *graph.Graph
	parts    []WirePartition
	plans    map[string]*exec.Plan
	parallel int
	workers  int
	// sessRes persists across the graph's steps (session-lifetime
	// resources); it is lost if the worker restarts — the coarse-grained
	// checkpoint failure model of §3.
	sessRes *ops.Resources
	owner   net.Conn // control conn that registered this graph

	mu       sync.Mutex
	steps    map[uint64]context.CancelFunc // in-flight steps
	released uint64                        // scopes of steps <= released are dropped
	traces   map[uint64]*trace.Tracer      // recent traced steps (traceWindow)
}

// NewWorker starts a worker daemon: a control listener on ctrlAddr and a
// rendezvous data plane on dataAddr (use "127.0.0.1:0" to let the kernel
// pick). It serves until Close.
func NewWorker(name, ctrlAddr, dataAddr string) (*Worker, error) {
	rv, err := rendezvous.NewNet(name, dataAddr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", ctrlAddr)
	if err != nil {
		rv.Close()
		return nil, fmt.Errorf("cluster: listen %s: %w", ctrlAddr, err)
	}
	w := &Worker{
		name:    name,
		ctrl:    ln,
		rv:      rv,
		graphs:  map[uint64]*workerGraph{},
		conns:   map[net.Conn]struct{}{},
		traceCh: make(chan tracedStep, traceWindow),
	}
	// Deliveries addressed to released steps (or released graphs) are
	// stragglers: drop them instead of resurrecting their scope tables.
	rv.SetScopeFilter(w.allowScope)
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Name returns the worker's name (rendezvous keys route by it).
func (w *Worker) Name() string { return w.name }

// Addr returns the control address drivers dial.
func (w *Worker) Addr() string { return w.ctrl.Addr().String() }

// DataAddr returns the rendezvous data-plane address peers dial.
func (w *Worker) DataAddr() string { return w.rv.Addr() }

// ScopeCount exposes the live rendezvous scope tables (leak tests).
func (w *Worker) ScopeCount() int { return w.rv.ScopeCount() }

// ServeHealth starts an HTTP readiness endpoint on addr and returns the
// address it actually listens on ("127.0.0.1:0" picks a port). GET
// /healthz answers 200 with the worker's name, registered-graph count, and
// live scope count once the daemon is accepting work — chaos scripts and
// CI poll it instead of sleeping blind. The endpoint dies with the worker.
func (w *Worker) ServeHealth(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: health listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		w.mu.Lock()
		closed := w.closed
		graphs := len(w.graphs)
		w.mu.Unlock()
		if closed {
			http.Error(rw, "shutting down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(rw, "ok %s graphs=%d scopes=%d\n", w.name, graphs, w.rv.ScopeCount())
	})
	mux.Handle("/metrics", metrics.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", w.handleDebugTrace)
	srv := &http.Server{Handler: mux}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("cluster: worker %s closed", w.name)
	}
	if w.healthSrv != nil {
		w.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("cluster: worker %s already serves health", w.name)
	}
	w.healthSrv = srv
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close shuts the daemon down: control conns, in-flight steps, data plane.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	for c := range w.conns {
		c.Close()
	}
	graphs := make(map[uint64]*workerGraph, len(w.graphs))
	for gid, g := range w.graphs {
		graphs[gid] = g
	}
	health := w.healthSrv
	w.mu.Unlock()
	if health != nil {
		health.Close()
	}
	w.ctrl.Close()
	for gid, g := range graphs {
		w.abortGraphSteps(gid, g, fmt.Errorf("cluster: worker %s closed", w.name))
	}
	w.rv.Close()
	w.wg.Wait()
}

func (w *Worker) allowScope(scope string) bool {
	gid, step, ok := ParseScope(scope)
	if !ok {
		return true // not a step scope: unscoped traffic stays untouched
	}
	w.mu.Lock()
	g := w.graphs[gid]
	w.mu.Unlock()
	if g == nil {
		return false // released or never-registered graph
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return step > g.released
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ctrl.Accept()
		if err != nil {
			return
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.handleConn(conn)
	}
}

// handleConn serves one driver session. Requests are decoded in order;
// steps run asynchronously so Abort requests behind them are still seen.
func (w *Worker) handleConn(conn net.Conn) {
	defer w.wg.Done()
	var wmu sync.Mutex // serializes response writes from step goroutines
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	send := func(resp *RespEnvelope) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(resp) // a broken conn surfaces on the next Decode
	}
	var registered []uint64
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		// The driver is gone: tear down what it registered, unless a
		// reconnected driver has already re-registered the graph (then the
		// new conn owns it). The ownership check happens inside
		// releaseGraphIf's critical section — checking here and releasing
		// there would race a concurrent re-registration and delete the new
		// owner's graph.
		for _, gid := range registered {
			w.releaseGraphIf(gid, conn, fmt.Errorf("cluster: driver connection lost"))
		}
	}()
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		switch {
		case env.Hello != nil:
			send(&RespEnvelope{Hello: &HelloResp{Worker: w.name, DataAddr: w.rv.Addr()}})
		case env.Reg != nil:
			if debugCluster {
				fmt.Printf("[%s] register g%d\n", w.name, env.Reg.GraphID)
			}
			err := w.register(env.Reg, conn)
			if err == nil {
				registered = append(registered, env.Reg.GraphID)
			}
			send(&RespEnvelope{Reg: &RegResp{GraphID: env.Reg.GraphID, Err: wrapErr(err)}})
		case env.Step != nil:
			req := env.Step
			if debugCluster {
				fmt.Printf("[%s] step req g%d s%d\n", w.name, req.GraphID, req.Step)
			}
			w.mu.Lock()
			g := w.graphs[req.GraphID]
			w.mu.Unlock()
			if g == nil {
				send(&RespEnvelope{Step: &StepResp{GraphID: req.GraphID, Step: req.Step,
					Err: fmt.Sprintf("cluster: worker %s: graph %d not registered", w.name, req.GraphID)}})
				continue
			}
			ctx, cancel := context.WithCancel(context.Background())
			g.mu.Lock()
			g.steps[req.Step] = cancel
			// Advance the watermark of cluster-wide completed steps.
			advanced := req.ReleaseThrough > g.released
			if advanced {
				g.released = req.ReleaseThrough
			}
			g.mu.Unlock()
			// Drop every live scope at or below the watermark — a sweep of
			// the live tables (bounded by the in-flight window plus any
			// straggler-created entries), never a replay of step history.
			// It runs outside g.mu: the rendezvous delivery path evaluates
			// the scope filter (which takes g.mu) under its own lock, so
			// holding g.mu across a release would invert the order.
			if advanced {
				gid := req.GraphID
				through := req.ReleaseThrough
				w.rv.ReleaseScopesIf(func(scope string) bool {
					g2, s2, ok := ParseScope(scope)
					return ok && g2 == gid && s2 <= through
				})
			}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				resp := w.runStep(g, req, ctx)
				if debugCluster {
					fmt.Printf("[%s] step resp g%d s%d err=%q\n", w.name, resp.GraphID, resp.Step, resp.Err)
				}
				g.mu.Lock()
				delete(g.steps, req.Step)
				g.mu.Unlock()
				cancel()
				send(&RespEnvelope{Step: resp})
			}()
		case env.Abort != nil:
			if debugCluster {
				fmt.Printf("[%s] abort req g%d s%d: %s\n", w.name, env.Abort.GraphID, env.Abort.Step, env.Abort.Reason)
			}
			w.mu.Lock()
			g := w.graphs[env.Abort.GraphID]
			w.mu.Unlock()
			if g == nil {
				continue
			}
			reason := env.Abort.Reason
			if reason == "" {
				reason = "aborted by driver"
			}
			err := fmt.Errorf("cluster: step %d aborted: %s", env.Abort.Step, reason)
			// Abort the scope first so blocked Recvs drain, then cancel
			// the executors' context so they stop launching kernels.
			w.rv.AbortScope(ScopeName(env.Abort.GraphID, env.Abort.Step), err)
			g.mu.Lock()
			cancel := g.steps[env.Abort.Step]
			g.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		case env.Ckpt != nil:
			if debugCluster {
				fmt.Printf("[%s] checkpoint req g%d s%d\n", w.name, env.Ckpt.GraphID, env.Ckpt.Step)
			}
			send(&RespEnvelope{Ckpt: w.checkpointGraph(env.Ckpt)})
		case env.Restore != nil:
			if debugCluster {
				fmt.Printf("[%s] restore req g%d (%d vars)\n", w.name, env.Restore.GraphID, len(env.Restore.Vars))
			}
			send(&RespEnvelope{Restore: w.restoreGraph(env.Restore)})
		case env.Trace != nil:
			if debugCluster {
				fmt.Printf("[%s] trace req g%d s%d\n", w.name, env.Trace.GraphID, env.Trace.Step)
			}
			send(&RespEnvelope{Trace: w.traceGraph(env.Trace)})
		case env.Release != nil:
			w.releaseGraph(env.Release.GraphID, fmt.Errorf("cluster: graph released"))
		}
	}
}

// quiescedGraph looks a graph up and verifies no steps are in flight — the
// precondition of both checkpoint and restore. The driver guarantees it by
// quiescing the step window first; a violation is reported, not tolerated,
// because a snapshot raced by a step would be silently inconsistent.
func (w *Worker) quiescedGraph(gid uint64, op string) (*workerGraph, error) {
	w.mu.Lock()
	g := w.graphs[gid]
	w.mu.Unlock()
	if g == nil {
		return nil, fmt.Errorf("cluster: worker %s: graph %d not registered", w.name, gid)
	}
	g.mu.Lock()
	inflight := len(g.steps)
	g.mu.Unlock()
	if inflight > 0 {
		return nil, fmt.Errorf("cluster: worker %s: %s with %d steps in flight", w.name, op, inflight)
	}
	return g, nil
}

// checkpointGraph snapshots the graph's session variables — this worker's
// shard of a distributed checkpoint.
func (w *Worker) checkpointGraph(req *CheckpointReq) *CheckpointResp {
	resp := &CheckpointResp{GraphID: req.GraphID, Step: req.Step}
	g, err := w.quiescedGraph(req.GraphID, "checkpoint")
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	vars, err := checkpoint.Capture(g.sessRes)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Vars = SnapshotsToWire(vars)
	return resp
}

// restoreGraph installs variable values into the graph's session container
// (resume-from-checkpoint, or seeding a fresh job's initial state).
func (w *Worker) restoreGraph(req *RestoreReq) *RestoreResp {
	resp := &RestoreResp{GraphID: req.GraphID}
	g, err := w.quiescedGraph(req.GraphID, "restore")
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	vars, err := SnapshotsFromWire(req.Vars)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	if err := checkpoint.Apply(vars, g.sessRes); err != nil {
		resp.Err = err.Error()
	}
	return resp
}

// register rebuilds the graph, compiles one plan per hosted device, and
// installs the registration (replacing any previous one under the same id).
func (w *Worker) register(rg *RegisterGraph, owner net.Conn) error {
	g, byName, err := BuildGraph(rg.Nodes)
	if err != nil {
		return err
	}
	resolve := func(wo WireOutput) (graph.Output, error) {
		n := byName[wo.Node]
		if n == nil {
			return graph.Output{}, fmt.Errorf("cluster: fetch references unknown node %q", wo.Node)
		}
		return n.Out(wo.Index), nil
	}
	plans := make(map[string]*exec.Plan, len(rg.Parts))
	for _, part := range rg.Parts {
		nodes := make([]*graph.Node, 0, len(part.Nodes))
		for _, name := range part.Nodes {
			n := byName[name]
			if n == nil {
				return fmt.Errorf("cluster: partition %q lists unknown node %q", part.Device, name)
			}
			nodes = append(nodes, n)
		}
		fetches := make([]graph.Output, 0, len(part.Fetches))
		for _, f := range part.Fetches {
			o, err := resolve(f)
			if err != nil {
				return err
			}
			fetches = append(fetches, o)
		}
		// A remote master is a trust boundary: refuse a partition that
		// cannot execute (bad arities, broken frames, dead merges) at
		// registration, with diagnostics in the RegResp, rather than
		// hanging or failing at step time. Partial mode — the peer ends
		// of Send/Recv pairs live on other workers.
		if ds := verify.Check(g, verify.Options{Nodes: nodes}); len(ds) != 0 {
			return fmt.Errorf("cluster: partition %q failed verification: %w", part.Device, ds.Err())
		}
		p, err := exec.NewPlan(g, nodes, fetches)
		if err != nil {
			return fmt.Errorf("cluster: partition %q: %w", part.Device, err)
		}
		plans[part.Device] = p
	}
	for peer, addr := range rg.Peers {
		if peer != w.name {
			w.rv.AddPeer(peer, addr)
		}
	}
	// Unconditional: a zero-latency registration must clear any fabric
	// injection a previous registration configured on this daemon. Same
	// for fault injection: zero probs disarm it.
	w.rv.SetFabric(rg.Latency, rg.Bandwidth)
	w.rv.SetFaults(rg.FaultSeed, rg.FaultResetProb, rg.FaultDropProb)
	wg := &workerGraph{
		g:        g,
		parts:    rg.Parts,
		plans:    plans,
		parallel: rg.ParallelIterations,
		workers:  rg.Workers,
		sessRes:  ops.NewResources(),
		owner:    owner,
		steps:    map[uint64]context.CancelFunc{},
		traces:   map[uint64]*trace.Tracer{},
	}
	w.mu.Lock()
	old := w.graphs[rg.GraphID]
	if old != nil {
		// Re-registration of the same graph id is the same session: the
		// driver re-registers every participant when any one of them
		// reconnects, and a surviving worker's variables must outlive
		// that — only a worker restart loses session state (§3).
		wg.sessRes = old.sessRes
	}
	w.graphs[rg.GraphID] = wg
	w.mu.Unlock()
	if old != nil {
		w.abortGraphSteps(rg.GraphID, old, fmt.Errorf("cluster: graph %d re-registered", rg.GraphID))
		w.dropScopes(rg.GraphID)
	}
	return nil
}

// releaseGraph aborts a graph's in-flight steps, drops its scopes, and
// forgets the registration.
func (w *Worker) releaseGraph(gid uint64, cause error) {
	w.releaseGraphIf(gid, nil, cause)
}

// releaseGraphIf is releaseGraph conditioned on ownership: when owner is
// non-nil the registration is only torn down if that control conn still
// owns it, atomically with the lookup — so a disconnect's deferred cleanup
// can never delete a graph a reconnected driver just re-registered.
func (w *Worker) releaseGraphIf(gid uint64, owner net.Conn, cause error) {
	w.mu.Lock()
	g := w.graphs[gid]
	if g == nil || (owner != nil && g.owner != owner) {
		w.mu.Unlock()
		return
	}
	delete(w.graphs, gid)
	w.mu.Unlock()
	w.abortGraphSteps(gid, g, cause)
	w.dropScopes(gid)
}

// dropScopes releases every scope the graph still holds. Later stragglers
// are discarded by the scope filter (the graph is unregistered or its
// released watermark covers them).
func (w *Worker) dropScopes(gid uint64) {
	w.rv.ReleaseScopesIf(func(scope string) bool {
		g2, _, ok := ParseScope(scope)
		return ok && g2 == gid
	})
}

// abortGraphSteps fails every in-flight step of the graph: the step scope
// aborts (blocked Recvs drain with cause) and the executors' context is
// canceled (no new kernels launch).
func (w *Worker) abortGraphSteps(gid uint64, g *workerGraph, cause error) {
	g.mu.Lock()
	steps := make(map[uint64]context.CancelFunc, len(g.steps))
	for s, c := range g.steps {
		steps[s] = c
	}
	g.mu.Unlock()
	for s, cancel := range steps {
		w.rv.AbortScope(ScopeName(gid, s), cause)
		cancel()
	}
}

// runStep executes one step across the worker's device partitions, exactly
// like the in-process distrib.Cluster: one executor per device, one shared
// kernel pool, coordination only through the (step-scoped) rendezvous. The
// first partition failure aborts the scope so sibling partitions drain.
func (w *Worker) runStep(g *workerGraph, req *StepReq, ctx context.Context) *StepResp {
	stepStart := time.Now()
	defer func() {
		metricClusterSteps.Inc()
		metricStepDuration.Observe(time.Since(stepStart).Nanoseconds())
	}()
	resp := &StepResp{GraphID: req.GraphID, Step: req.Step}
	feeds, err := FeedsFromWire(req.Feeds)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	scope := ScopeName(req.GraphID, req.Step)
	rv := w.rv.Scope(scope)

	// Trace when the driver asked (StepReq.Trace) or the /debug/trace
	// endpoint armed forced tracing. One tracer spans every partition of the
	// step; partitions write to distinct streams (TraceStream = device).
	armed := false
	var tracer *trace.Tracer
	if !req.Trace {
		armed = w.armTraced()
	}
	if req.Trace || armed {
		tracer = trace.New()
		metricClusterTraces.Inc()
		defer func() {
			w.storeTrace(g, req.Step, tracer)
			if armed {
				select {
				case w.traceCh <- tracedStep{step: req.Step, tr: tracer}:
				default: // nobody is waiting anymore; drop
				}
			}
		}()
	}

	var pool *exec.Pool
	if g.workers != exec.WorkersSpawn {
		pool = exec.NewPool(g.workers)
		defer pool.Close()
	}
	stepRes := ops.NewResources()
	type devResult struct {
		dev  string
		vals []ops.Value
		err  error
	}
	results := make(chan devResult, len(g.parts))
	for _, part := range g.parts {
		go func(dev string) {
			ex, err := exec.NewFromPlan(g.plans[dev], exec.Config{
				Ctx:        ctx,
				Feeds:      feeds,
				StepRes:    stepRes,
				SessionRes: g.sessRes,
				// The RNG stream is a pure function of the step number —
				// deliberately independent of GraphID, which changes when a
				// resumed or rebuilt job re-registers. A job replayed from a
				// checkpoint therefore draws identical random numbers and
				// reproduces an uninterrupted run bit for bit.
				RNG:                tensor.NewRNG(req.Step*1000003 + 17),
				Rendezvous:         rv,
				ParallelIterations: g.parallel,
				Workers:            g.workers,
				Pool:               pool,
				Trace:              tracer,
				TraceStream:        dev,
			})
			if err != nil {
				results <- devResult{dev: dev, err: err}
				return
			}
			vals, err := ex.Run()
			results <- devResult{dev: dev, vals: vals, err: err}
		}(part.Device)
	}
	collected := map[string][]ops.Value{}
	var firstErr error
	for range g.parts {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %s partition %q: %w", w.name, r.dev, r.err)
			// Drain this worker's sibling partitions; remote partitions
			// learn through the driver's AbortReq fan-out.
			rv.Abort(firstErr)
		}
		collected[r.dev] = r.vals
	}
	if firstErr != nil {
		resp.Err = firstErr.Error()
		return resp
	}
	for _, part := range g.parts {
		vals := collected[part.Device]
		for i := range part.Fetches {
			t, err := vals[i].Tensor()
			if err != nil {
				resp.Err = fmt.Sprintf("worker %s fetch %s: %v", w.name, part.Fetches[i].Node, err)
				return resp
			}
			resp.Vals = append(resp.Vals, TensorToWire(t))
		}
	}
	return resp
}

// armTraced consumes one /debug/trace arming, if any remain.
func (w *Worker) armTraced() bool {
	for {
		n := w.traceArm.Load()
		if n <= 0 {
			return false
		}
		if w.traceArm.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// storeTrace retains one step's tracer for TraceReq pulls, evicting the
// oldest entries beyond traceWindow.
func (w *Worker) storeTrace(g *workerGraph, step uint64, tr *trace.Tracer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.traces[step] = tr
	for len(g.traces) > traceWindow {
		oldest := step
		for s := range g.traces {
			if s < oldest {
				oldest = s
			}
		}
		delete(g.traces, oldest)
	}
}

// traceGraph answers a TraceReq: this worker's span timeline for one traced
// step, or an error naming what is missing.
func (w *Worker) traceGraph(req *TraceReq) *TraceResp {
	resp := &TraceResp{GraphID: req.GraphID, Step: req.Step, Worker: w.name}
	w.mu.Lock()
	g := w.graphs[req.GraphID]
	w.mu.Unlock()
	if g == nil {
		resp.Err = fmt.Sprintf("cluster: worker %s: graph %d not registered", w.name, req.GraphID)
		return resp
	}
	g.mu.Lock()
	tr := g.traces[req.Step]
	g.mu.Unlock()
	if tr == nil {
		resp.Err = fmt.Sprintf("cluster: worker %s: no trace recorded for graph %d step %d (was the step run with StepReq.Trace?)", w.name, req.GraphID, req.Step)
		return resp
	}
	resp.Base = tr.Base().UnixNano()
	resp.Spans = tr.Events()
	return resp
}

// handleDebugTrace serves GET /debug/trace?steps=N: arm forced tracing of
// the next N steps this daemon executes (any graph, any driver), wait for
// them to finish, and return the merged Chrome trace-event JSON. Pair it
// with a driver issuing steps; with no steps arriving the request times out
// (timeout_ms, default 30s) and reports what it collected.
func (w *Worker) handleDebugTrace(rw http.ResponseWriter, r *http.Request) {
	n := 1
	if s := r.URL.Query().Get("steps"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 || v > traceWindow {
			http.Error(rw, fmt.Sprintf("steps must be in [1, %d]", traceWindow), http.StatusBadRequest)
			return
		}
		n = v
	}
	timeout := 30 * time.Second
	if s := r.URL.Query().Get("timeout_ms"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			timeout = time.Duration(v) * time.Millisecond
		}
	}
	// Drain any tracer a previous (abandoned) arming left behind, then arm.
	for {
		select {
		case <-w.traceCh:
			continue
		default:
		}
		break
	}
	w.traceArm.Add(int64(n))
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	var steps []tracedStep
collect:
	for len(steps) < n {
		select {
		case ts := <-w.traceCh:
			steps = append(steps, ts)
		case <-deadline.C:
			break collect
		case <-r.Context().Done():
			break collect
		}
	}
	// Disarm whatever was not consumed (without going negative: a step may
	// have claimed an arming and not delivered yet).
	for {
		cur := w.traceArm.Load()
		left := min(cur, int64(n-len(steps)))
		if left <= 0 || w.traceArm.CompareAndSwap(cur, cur-left) {
			break
		}
	}
	if len(steps) == 0 {
		http.Error(rw, fmt.Sprintf("no step executed within %v; issue steps while this request waits", timeout), http.StatusGatewayTimeout)
		return
	}
	parts := make([]trace.Part, len(steps))
	for i, ts := range steps {
		parts[i] = trace.Part{
			PID:    i + 1,
			Name:   fmt.Sprintf("%s step %d", w.name, ts.step),
			Base:   ts.tr.Base().UnixNano(),
			Events: ts.tr.Events(),
		}
	}
	js, err := trace.MergeChrome(parts)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	_, _ = rw.Write(js)
}
