// Package cluster is the multi-process cluster runtime: a generic worker
// daemon (Worker) that accepts gob-encoded graph registrations and executes
// multi-step runs against cached per-worker plans, and the driver-side
// client (Client) that registers partitioned graphs, launches steps,
// propagates cancellation, and collects fetch values.
//
// Partitions on different workers make independent progress, coordinating
// only through the TCP rendezvous (internal/rendezvous.Net) — the driver is
// involved only at step start and at completion or failure, the §3 shape.
// Every step runs in a private rendezvous scope ("g<graph>.s<step>"), so an
// aborted or failed step can never leak tokens into the next one. See
// README.md in this directory for the wire protocol and failure model.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// WireTensor is the gob form of a dense tensor (feeds, fetches, and Const
// attributes cross the control connection in this shape).
type WireTensor struct {
	DType int
	Shape []int
	F     []float64
	I     []int64
	B     []bool
	S     []string
}

// TensorToWire converts a tensor for transport.
func TensorToWire(t *tensor.Tensor) *WireTensor {
	if t == nil {
		return nil
	}
	return &WireTensor{
		DType: int(t.DType()),
		Shape: t.Shape(),
		F:     t.F,
		I:     t.I,
		B:     t.B,
		S:     t.S,
	}
}

// TensorFromWire rebuilds a tensor. The wire shape is untrusted: dtype,
// dimension signs, and the shape/payload element count are all validated
// before the panicking tensor constructors run, so a malformed or hostile
// envelope yields a diagnosed error, never a panic in the worker.
func TensorFromWire(w *WireTensor) (*tensor.Tensor, error) {
	if w == nil {
		return nil, nil
	}
	var elems int
	switch tensor.DType(w.DType) {
	case tensor.Float:
		elems = len(w.F)
	case tensor.Int:
		elems = len(w.I)
	case tensor.Bool:
		elems = len(w.B)
	case tensor.Str:
		elems = len(w.S)
	default:
		return nil, fmt.Errorf("cluster: unknown wire dtype %d", w.DType)
	}
	if err := tensor.CheckShape(w.Shape, elems); err != nil {
		return nil, fmt.Errorf("cluster: malformed wire tensor: %w", err)
	}
	switch tensor.DType(w.DType) {
	case tensor.Int:
		return tensor.FromInts(w.I, w.Shape...), nil
	case tensor.Bool:
		return tensor.FromBools(w.B, w.Shape...), nil
	case tensor.Str:
		return tensor.FromStrings(w.S, w.Shape...), nil
	default:
		return tensor.FromFloats(w.F, w.Shape...), nil
	}
}

// Attribute kinds of WireAttr (an explicit tagged union: gob needs no
// interface registration and unknown kinds fail loudly at decode).
const (
	attrInt = iota
	attrBool
	attrString
	attrFloat
	attrInts
	attrTensor
	attrSteps
)

// WireAttr is one node attribute in transportable form.
type WireAttr struct {
	Key   string
	Kind  int
	I     int64
	B     bool
	S     string
	F     float64
	Ints  []int
	T     *WireTensor
	Steps []ops.FusedStep
}

func attrToWire(key string, v any) (WireAttr, error) {
	a := WireAttr{Key: key}
	switch x := v.(type) {
	case int:
		a.Kind, a.I = attrInt, int64(x)
	case int64:
		a.Kind, a.I = attrInt, x
	case bool:
		a.Kind, a.B = attrBool, x
	case string:
		a.Kind, a.S = attrString, x
	case float64:
		a.Kind, a.F = attrFloat, x
	case []int:
		a.Kind, a.Ints = attrInts, x
	case *tensor.Tensor:
		a.Kind, a.T = attrTensor, TensorToWire(x)
	case []ops.FusedStep:
		a.Kind, a.Steps = attrSteps, x
	default:
		return a, fmt.Errorf("cluster: attribute %q has unserializable type %T", key, v)
	}
	return a, nil
}

func attrFromWire(a WireAttr) (any, error) {
	switch a.Kind {
	case attrInt:
		return int(a.I), nil
	case attrBool:
		return a.B, nil
	case attrString:
		return a.S, nil
	case attrFloat:
		return a.F, nil
	case attrInts:
		return a.Ints, nil
	case attrTensor:
		return TensorFromWire(a.T)
	case attrSteps:
		return a.Steps, nil
	}
	return nil, fmt.Errorf("cluster: attribute %q has unknown wire kind %d", a.Key, a.Kind)
}

// WireOutput references a node output port by producer name.
type WireOutput struct {
	Node  string
	Index int
}

// WireNode is one graph node in transportable form. Inputs reference
// producers by name; the control-flow context pointer is intentionally
// absent — the executor never reads it (contexts exist for graph
// construction, autodiff, and partitioning, all of which happen on the
// driver).
type WireNode struct {
	Name       string
	Op         string
	Device     string
	NumOutputs int
	Inputs     []WireOutput
	ControlIn  []string
	Attrs      []WireAttr
}

// WirePartition is one device's slice of a registration: the names of its
// nodes (into RegisterGraph.Nodes) and the fetches its executor returns, in
// the order the driver will reassemble them.
type WirePartition struct {
	Device  string
	Nodes   []string
	Fetches []WireOutput
}

// EncodeNodes converts a closed node set (every input and control edge stays
// inside the set — partitioning guarantees this per worker) into wire form.
// Nodes are emitted in a topological order treating NextIteration inputs as
// back edges, so the receiver can rebuild the graph in one pass plus a
// back-edge fixup.
func EncodeNodes(nodes []*graph.Node) ([]WireNode, error) {
	order, err := topoOrder(nodes)
	if err != nil {
		return nil, err
	}
	out := make([]WireNode, len(order))
	for i, n := range order {
		wn := WireNode{
			Name:       n.Name(),
			Op:         n.Op(),
			Device:     n.Device(),
			NumOutputs: n.NumOutputs(),
		}
		for _, in := range n.InputsRef() {
			wn.Inputs = append(wn.Inputs, WireOutput{Node: in.Node.Name(), Index: in.Index})
		}
		for _, c := range n.ControlInputsRef() {
			wn.ControlIn = append(wn.ControlIn, c.Name())
		}
		for k, v := range n.AttrsMap() {
			if v == nil {
				continue
			}
			// Underscore-prefixed attributes are driver-side construction
			// metadata (e.g. core.ConstructAttr, the control-flow context
			// autodiff and partitioning read); the executor never touches
			// them, so they do not cross the wire.
			if strings.HasPrefix(k, "_") {
				continue
			}
			a, err := attrToWire(k, v)
			if err != nil {
				return nil, fmt.Errorf("cluster: node %s: %w", n.Name(), err)
			}
			wn.Attrs = append(wn.Attrs, a)
		}
		out[i] = wn
	}
	return out, nil
}

// topoOrder sorts the node set topologically with NextIteration inputs as
// back edges (the only legal cycles), erroring on any other cycle or on an
// edge escaping the set.
func topoOrder(nodes []*graph.Node) ([]*graph.Node, error) {
	inSet := make(map[int]int, len(nodes)) // node id -> position
	for i, n := range nodes {
		inSet[n.ID()] = i
	}
	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	for i, n := range nodes {
		if graph.IsBackEdgeOp(n.Op()) {
			continue
		}
		seen := map[int]bool{}
		edge := func(src *graph.Node) error {
			j, ok := inSet[src.ID()]
			if !ok {
				return fmt.Errorf("cluster: edge %s -> %s escapes the worker's node set", src.Name(), n.Name())
			}
			if !seen[j] {
				seen[j] = true
				indeg[i]++
				succ[j] = append(succ[j], i)
			}
			return nil
		}
		for _, in := range n.InputsRef() {
			if err := edge(in.Node); err != nil {
				return nil, err
			}
		}
		for _, c := range n.ControlInputsRef() {
			if err := edge(c); err != nil {
				return nil, err
			}
		}
	}
	var ready []int
	for i := range nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	var order []*graph.Node
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, nodes[i])
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("cluster: node set has a cycle not through NextIteration")
	}
	return order, nil
}

// BuildGraph rebuilds a graph from wire nodes. Back-edge inputs (inputs of
// NextIteration nodes referencing not-yet-created producers) are created
// against a sentinel and patched once every node exists.
func BuildGraph(nodes []WireNode) (*graph.Graph, map[string]*graph.Node, error) {
	g := graph.New()
	byName := make(map[string]*graph.Node, len(nodes))
	// The sentinel is never executed (it belongs to no partition); it only
	// gives forward references a valid port until the fixup pass.
	sentinel, err := g.AddNode(graph.NodeArgs{
		Op:         "Const",
		Name:       "__wire_sentinel",
		Attrs:      map[string]any{"value": tensor.Scalar(0)},
		NumOutputs: 1,
	})
	if err != nil {
		return nil, nil, err
	}
	type inFixup struct {
		node *graph.Node
		idx  int
		src  WireOutput
	}
	type ctlFixup struct {
		node *graph.Node
		src  string
	}
	var inFixups []inFixup
	var ctlFixups []ctlFixup
	for _, wn := range nodes {
		if _, dup := byName[wn.Name]; dup {
			return nil, nil, fmt.Errorf("cluster: duplicate node name %q in registration", wn.Name)
		}
		backEdge := graph.IsBackEdgeOp(wn.Op)
		args := graph.NodeArgs{
			Op:         wn.Op,
			Name:       wn.Name,
			Device:     wn.Device,
			NumOutputs: wn.NumOutputs,
		}
		for _, wi := range wn.Inputs {
			src, ok := byName[wi.Node]
			if !ok {
				if !backEdge {
					return nil, nil, fmt.Errorf("cluster: node %s input %s not yet defined (registration out of order)", wn.Name, wi.Node)
				}
				args.Inputs = append(args.Inputs, sentinel.Out(0))
				continue
			}
			args.Inputs = append(args.Inputs, src.Out(wi.Index))
		}
		for _, cn := range wn.ControlIn {
			c, ok := byName[cn]
			if !ok {
				if !backEdge {
					return nil, nil, fmt.Errorf("cluster: node %s control input %s not yet defined", wn.Name, cn)
				}
				continue // attached in the fixup pass
			}
			args.ControlIn = append(args.ControlIn, c)
		}
		if len(wn.Attrs) > 0 {
			args.Attrs = make(map[string]any, len(wn.Attrs))
			for _, a := range wn.Attrs {
				v, err := attrFromWire(a)
				if err != nil {
					return nil, nil, fmt.Errorf("cluster: node %s: %w", wn.Name, err)
				}
				args.Attrs[a.Key] = v
			}
		}
		n, err := g.AddNode(args)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: rebuild node %s: %w", wn.Name, err)
		}
		if n.Name() != wn.Name {
			return nil, nil, fmt.Errorf("cluster: node name %q was uniquified to %q on rebuild", wn.Name, n.Name())
		}
		byName[wn.Name] = n
		if backEdge {
			for i, wi := range wn.Inputs {
				if _, ok := byName[wi.Node]; !ok {
					inFixups = append(inFixups, inFixup{node: n, idx: i, src: wi})
				}
			}
			for _, cn := range wn.ControlIn {
				if _, ok := byName[cn]; !ok {
					ctlFixups = append(ctlFixups, ctlFixup{node: n, src: cn})
				}
			}
		}
	}
	for _, f := range inFixups {
		src, ok := byName[f.src.Node]
		if !ok {
			return nil, nil, fmt.Errorf("cluster: back edge %s -> %s references an absent node", f.src.Node, f.node.Name())
		}
		// ReplaceInput skips AddNode's port validation, so check the
		// untrusted wire index here.
		out := src.Out(f.src.Index)
		if !out.Valid() {
			return nil, nil, fmt.Errorf("cluster: back edge %s:%d -> %s references an invalid output port", f.src.Node, f.src.Index, f.node.Name())
		}
		f.node.ReplaceInput(f.idx, out)
	}
	for _, f := range ctlFixups {
		src, ok := byName[f.src]
		if !ok {
			return nil, nil, fmt.Errorf("cluster: back control edge %s -> %s references an absent node", f.src, f.node.Name())
		}
		f.node.AddControlInput(src)
	}
	return g, byName, nil
}

// SnapshotsToWire converts a captured variable map into wire snapshots,
// sorted by name so shards serialize deterministically.
func SnapshotsToWire(vars map[string]*tensor.Tensor) []VarSnapshot {
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]VarSnapshot, len(names))
	for i, n := range names {
		out[i] = VarSnapshot{Name: n, T: TensorToWire(vars[n])}
	}
	return out
}

// SnapshotsFromWire rebuilds a variable map from wire snapshots.
func SnapshotsFromWire(snaps []VarSnapshot) (map[string]*tensor.Tensor, error) {
	out := make(map[string]*tensor.Tensor, len(snaps))
	for _, s := range snaps {
		t, err := TensorFromWire(s.T)
		if err != nil {
			return nil, fmt.Errorf("cluster: variable %q: %w", s.Name, err)
		}
		if t == nil {
			return nil, fmt.Errorf("cluster: variable %q has no value", s.Name)
		}
		out[s.Name] = t
	}
	return out, nil
}

// HostedVars returns the sorted set of session-variable names a wire node
// set touches (the "var" attribute of VarRead/Assign/AssignAdd/... ops) —
// how the driver routes checkpoint shards to the workers that own them.
func HostedVars(nodes []WireNode) []string {
	seen := map[string]bool{}
	for _, n := range nodes {
		for _, a := range n.Attrs {
			if a.Key == "var" && a.Kind == attrString && !seen[a.S] {
				seen[a.S] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FeedsToWire converts a feed map for transport.
func FeedsToWire(feeds map[string]*tensor.Tensor) map[string]*WireTensor {
	if len(feeds) == 0 {
		return nil
	}
	out := make(map[string]*WireTensor, len(feeds))
	for k, v := range feeds {
		out[k] = TensorToWire(v)
	}
	return out
}

// FeedsFromWire rebuilds a feed map.
func FeedsFromWire(w map[string]*WireTensor) (map[string]*tensor.Tensor, error) {
	if len(w) == 0 {
		return nil, nil
	}
	out := make(map[string]*tensor.Tensor, len(w))
	for k, v := range w {
		t, err := TensorFromWire(v)
		if err != nil {
			return nil, fmt.Errorf("cluster: feed %q: %w", k, err)
		}
		out[k] = t
	}
	return out, nil
}
