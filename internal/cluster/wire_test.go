package cluster

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// TestAttrRoundTrip covers every attribute kind the wire format carries.
func TestAttrRoundTrip(t *testing.T) {
	cases := []struct {
		key string
		val any
	}{
		{"i", 42},
		{"i64", int64(7)},
		{"b", true},
		{"s", "frame/name"},
		{"f", 2.5},
		{"ints", []int{3, 1, 4}},
		{"tensor", tensor.FromFloats([]float64{1, 2, 3, 4}, 2, 2)},
		{"steps", []ops.FusedStep{{Op: "Add", A: 0, B: 1}, {Op: "Tanh", A: ops.FusedRunning, B: ops.FusedNone}}},
	}
	for _, c := range cases {
		w, err := attrToWire(c.key, c.val)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		got, err := attrFromWire(w)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		switch want := c.val.(type) {
		case int64:
			if got != int(want) {
				t.Fatalf("%s: got %v", c.key, got)
			}
		case *tensor.Tensor:
			g := got.(*tensor.Tensor)
			if g.DType() != want.DType() || g.String() != want.String() {
				t.Fatalf("%s: got %v want %v", c.key, g, want)
			}
		case []int:
			g := got.([]int)
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("%s: got %v", c.key, g)
				}
			}
		case []ops.FusedStep:
			g := got.([]ops.FusedStep)
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("%s: got %v", c.key, g)
				}
			}
		default:
			if got != c.val {
				t.Fatalf("%s: got %v want %v", c.key, got, c.val)
			}
		}
	}
	if _, err := attrToWire("bad", struct{}{}); err == nil {
		t.Fatal("unserializable attribute accepted")
	}
}

// TestGraphRoundTripWhileLoopPartition encodes a real partitioned
// while-loop node set (cycles through NextIteration, control-loop state
// machine, Send/Recv keys, Const tensors) and rebuilds it, asserting the
// structure survives byte-exact at the level the executor reads.
func TestGraphRoundTripWhileLoopPartition(t *testing.T) {
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice("wA/cpu", func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(5)) },
			func(v []graph.Output) []graph.Output {
				var r graph.Output
				b.WithDevice("wB/cpu", func() {
					r = b.Add(v[0], b.Scalar(1))
				})
				return []graph.Output{r}
			},
			core.WhileOpts{Name: "wireloop"},
		)
	})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(b.G, core.Prune(b.G, outs, nil), func(dev string) string {
		return strings.SplitN(dev, "/", 2)[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for dev, nodes := range res.Parts {
		wire, err := EncodeNodes(nodes)
		if err != nil {
			t.Fatalf("%s: encode: %v", dev, err)
		}
		g2, byName, err := BuildGraph(wire)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", dev, err)
		}
		if g2.NumNodes() != len(nodes)+1 { // +1 sentinel
			t.Fatalf("%s: %d nodes rebuilt, want %d", dev, g2.NumNodes(), len(nodes)+1)
		}
		for _, n := range nodes {
			m := byName[n.Name()]
			if m == nil {
				t.Fatalf("%s: node %s lost", dev, n.Name())
			}
			if m.Op() != n.Op() || m.Device() != n.Device() || m.NumOutputs() != n.NumOutputs() {
				t.Fatalf("%s: node %s metadata diverged", dev, n.Name())
			}
			if m.NumInputs() != n.NumInputs() {
				t.Fatalf("%s: node %s arity diverged", dev, n.Name())
			}
			for i, in := range n.Inputs() {
				min := m.Input(i)
				if min.Node.Name() != in.Node.Name() || min.Index != in.Index {
					t.Fatalf("%s: node %s input %d: %s vs %s", dev, n.Name(), i, min, in)
				}
			}
			if n.AttrString("key") != m.AttrString("key") {
				t.Fatalf("%s: node %s rendezvous key diverged", dev, n.Name())
			}
			if n.AttrString("frame_name") != m.AttrString("frame_name") {
				t.Fatalf("%s: node %s frame diverged", dev, n.Name())
			}
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("%s: rebuilt graph invalid: %v", dev, err)
		}
	}
}

func TestScopeNameRoundTrip(t *testing.T) {
	for _, c := range []struct{ g, s uint64 }{{1, 1}, {0, 0}, {12, 100345}} {
		g, s, ok := ParseScope(ScopeName(c.g, c.s))
		if !ok || g != c.g || s != c.s {
			t.Fatalf("round trip failed for %v: got %d %d %v", c, g, s, ok)
		}
	}
	for _, bad := range []string{"", "x", "g1", "g1.s", "g.s1", "step5"} {
		if _, _, ok := ParseScope(bad); ok {
			t.Fatalf("ParseScope accepted %q", bad)
		}
	}
}
