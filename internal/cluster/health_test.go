package cluster

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeHealth: the readiness probe answers 200 with the worker's name
// while the daemon is up, refuses a second health listener, and stops
// answering once the daemon closes.
func TestServeHealth(t *testing.T) {
	w, err := NewWorker("wH", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	addr, err := w.ServeHealth("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d, want 200 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "ok wH") {
		t.Fatalf("probe body %q does not identify the worker", body)
	}

	if _, err := w.ServeHealth("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeHealth succeeded; want refusal")
	}

	w.Close()
	if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("probe answered 200 after Close (body %q)", body)
		}
	}
}
