package cluster

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// The control protocol is a stream of gob-encoded envelopes on one TCP
// connection per (driver, worker) pair: requests flow driver -> worker in
// Envelope, responses worker -> driver in RespEnvelope. Exactly one field of
// an envelope is non-nil. Requests are processed in arrival order; step
// execution itself is asynchronous, so an Abort can overtake a running step,
// and responses may interleave arbitrarily (the driver matches them by
// (graph, step)).

// HelloReq opens a session; the worker answers with its identity.
type HelloReq struct{}

// HelloResp identifies a worker: its name (which rendezvous keys route by)
// and the address of its rendezvous data plane.
type HelloResp struct {
	Worker   string
	DataAddr string
}

// RegisterGraph installs one partitioned graph on a worker: the worker's
// closed node set, its per-device partitions (with their fetches), and the
// data-plane addresses of every peer worker. Plans are compiled once at
// registration and cached; every step then takes the dense executor fast
// path. Re-registering a GraphID replaces the previous registration (the
// reconnect path after a worker restart).
type RegisterGraph struct {
	GraphID uint64
	Nodes   []WireNode
	Parts   []WirePartition
	// Peers maps every participating worker to its rendezvous address.
	Peers map[string]string
	// ParallelIterations / Workers mirror distrib.Options.
	ParallelIterations int
	Workers            int
	// Latency/Bandwidth inject simulated fabric characteristics into the
	// worker's rendezvous deliveries (benchmark sweeps).
	Latency   time.Duration
	Bandwidth float64
	// FaultSeed/FaultResetProb/FaultDropProb arm seeded probabilistic
	// fault injection on the worker's rendezvous send path (conn resets
	// and silent message drops; see rendezvous.Net.SetFaults) — how fleet
	// tests exercise retry and hedging without real process kills.
	FaultSeed      int64
	FaultResetProb float64
	FaultDropProb  float64
}

// RegResp acknowledges a registration.
type RegResp struct {
	GraphID uint64
	Err     string
}

// StepReq launches one step of a registered graph.
type StepReq struct {
	GraphID uint64
	Step    uint64
	Feeds   map[string]*WireTensor
	// ReleaseThrough tells the worker that every step <= this value has
	// completed cluster-wide: their rendezvous scopes are dropped and late
	// stragglers addressed to them are discarded. It rides on the next
	// step instead of its own round trip.
	ReleaseThrough uint64
	// Trace asks the worker to record a per-node execution trace of this
	// step; the driver pulls it afterwards with TraceReq and merges the
	// per-worker timelines into one Chrome trace file.
	Trace bool
}

// StepResp reports one step's outcome: the worker's fetch values in
// registration order (concatenated over its partitions), or the first
// partition error.
type StepResp struct {
	GraphID uint64
	Step    uint64
	Vals    []*WireTensor
	Err     string
}

// AbortReq propagates driver-side cancellation (or a sibling worker's
// failure) to a running step: the worker cancels the step's context and
// aborts its rendezvous scope so blocked Recvs drain — the remote mirror of
// rendezvous.Local.Abort. The outstanding StepResp carries the error.
type AbortReq struct {
	GraphID uint64
	Step    uint64
	Reason  string
}

// ReleaseReq discards a graph registration and every scope it still holds.
type ReleaseReq struct {
	GraphID uint64
}

// VarSnapshot is one session variable in transportable form — the unit of
// the checkpoint/restore protocol.
type VarSnapshot struct {
	Name string
	T    *WireTensor
}

// CheckpointReq asks the worker for a snapshot of every session variable
// the registered graph holds. The driver only sends it when the step
// window is quiesced (no steps in flight anywhere in the cluster), so the
// snapshot is a consistent cut at a step boundary — the paper's §3
// coarse-grained model. The worker refuses the request if it still has
// steps of the graph in flight (a protocol violation, not a race to
// tolerate silently).
type CheckpointReq struct {
	GraphID uint64
	// Step is the step boundary being captured; echoed in the response
	// and recorded by the driver in the checkpoint manifest.
	Step uint64
}

// CheckpointResp carries the worker's variable shard (sorted by name).
type CheckpointResp struct {
	GraphID uint64
	Step    uint64
	Vars    []VarSnapshot
	Err     string
}

// RestoreReq installs variable values into the registered graph's session
// container — the second half of resume-from-checkpoint, and also how a
// driver seeds initial variable values. Like CheckpointReq it is only
// legal while the graph is quiesced.
type RestoreReq struct {
	GraphID uint64
	Vars    []VarSnapshot
}

// RestoreResp acknowledges a restore.
type RestoreResp struct {
	GraphID uint64
	Err     string
}

// TraceReq pulls the per-node execution trace a worker recorded for one
// traced step (StepReq.Trace). Legal only after the step's StepResp has
// arrived; workers keep only a bounded window of recent step traces.
type TraceReq struct {
	GraphID uint64
	Step    uint64
}

// TraceResp carries one worker's span timeline for a traced step. Base is
// the worker-local wall-clock origin of the spans (UnixNano); the merger
// aligns all workers onto the earliest base.
type TraceResp struct {
	GraphID uint64
	Step    uint64
	Worker  string
	Base    int64
	Spans   []trace.Event
	Err     string
}

// Envelope is one driver -> worker request.
type Envelope struct {
	Hello   *HelloReq
	Reg     *RegisterGraph
	Step    *StepReq
	Abort   *AbortReq
	Release *ReleaseReq
	Ckpt    *CheckpointReq
	Restore *RestoreReq
	Trace   *TraceReq
}

// RespEnvelope is one worker -> driver response.
type RespEnvelope struct {
	Hello   *HelloResp
	Reg     *RegResp
	Step    *StepResp
	Ckpt    *CheckpointResp
	Restore *RestoreResp
	Trace   *TraceResp
}

// ScopeName is the rendezvous scope of one (graph, step): the per-step
// private key space shared by every worker running that step.
func ScopeName(graphID, step uint64) string {
	return "g" + strconv.FormatUint(graphID, 10) + ".s" + strconv.FormatUint(step, 10)
}

// ParseScope inverts ScopeName; ok is false for scopes it did not produce.
func ParseScope(scope string) (graphID, step uint64, ok bool) {
	if !strings.HasPrefix(scope, "g") {
		return 0, 0, false
	}
	rest := scope[1:]
	dot := strings.Index(rest, ".s")
	if dot < 0 {
		return 0, 0, false
	}
	g, err := strconv.ParseUint(rest[:dot], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	s, err := strconv.ParseUint(rest[dot+2:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return g, s, true
}

// wrapErr renders an error for the wire ("" for nil).
func wrapErr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
