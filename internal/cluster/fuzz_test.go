package cluster

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// fuzzEnvelope bundles every wire shape a worker decodes from the driver,
// so one gob stream exercises graph rebuild, snapshot restore, and feed
// reconstruction together.
type fuzzEnvelope struct {
	Nodes []WireNode
	Snaps []VarSnapshot
	Feeds map[string]*WireTensor
}

func fuzzSeed(f *testing.F, env fuzzEnvelope) {
	f.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
}

// FuzzWireDecode asserts the worker-side decode path never panics on a
// malformed registration: hostile tensors (bad dtypes, negative or
// overflowing shapes), dangling or out-of-range port references, duplicate
// names, and arbitrary gob garbage must all surface as errors.
func FuzzWireDecode(f *testing.F) {
	// Seed 1: a real partitioned while loop (cycles through NextIteration,
	// Send/Recv, Const tensor attrs) — the richest legitimate input.
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice("wA/cpu", func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(3)) },
			func(v []graph.Output) []graph.Output {
				var r graph.Output
				b.WithDevice("wB/cpu", func() {
					r = b.Add(v[0], b.Scalar(1))
				})
				return []graph.Output{r}
			},
			core.WhileOpts{Name: "fuzzloop"},
		)
	})
	if err := b.Err(); err != nil {
		f.Fatal(err)
	}
	res, err := partition.Partition(b.G, core.Prune(b.G, outs, nil), func(dev string) string {
		return strings.SplitN(dev, "/", 2)[0]
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, nodes := range res.Parts {
		wire, err := EncodeNodes(nodes)
		if err != nil {
			f.Fatal(err)
		}
		fuzzSeed(f, fuzzEnvelope{
			Nodes: wire,
			Snaps: SnapshotsToWire(map[string]*tensor.Tensor{
				"w": tensor.FromFloats([]float64{1, 2, 3, 4}, 2, 2),
			}),
			Feeds: FeedsToWire(map[string]*tensor.Tensor{"x": tensor.Scalar(1)}),
		})
	}

	// Seed 2: hostile shapes and references that must be rejected, not
	// trip the panicking tensor constructors or index out of range.
	fuzzSeed(f, fuzzEnvelope{
		Nodes: []WireNode{
			{Name: "c", Op: "Const", NumOutputs: 1, Attrs: []WireAttr{{
				Key: "value", Kind: attrTensor,
				T: &WireTensor{DType: int(tensor.Float), Shape: []int{-1}, F: []float64{1}},
			}}},
			{Name: "ni", Op: "NextIteration", NumOutputs: 1, Inputs: []WireOutput{{Node: "later", Index: 99}}},
			{Name: "later", Op: "Identity", NumOutputs: 1, Inputs: []WireOutput{{Node: "c", Index: 0}}},
		},
		Snaps: []VarSnapshot{
			{Name: "ovf", T: &WireTensor{DType: int(tensor.Int), Shape: []int{1 << 32, 1 << 32}}},
			{Name: "dtype", T: &WireTensor{DType: 42}},
			{Name: "nil"},
		},
		Feeds: map[string]*WireTensor{
			"short": {DType: int(tensor.Bool), Shape: []int{7}, B: []bool{true}},
		},
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		var env fuzzEnvelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
			return
		}
		if g, byName, err := BuildGraph(env.Nodes); err == nil {
			// A graph that decodes must be internally consistent enough to
			// re-encode (minus the sentinel, which belongs to no set).
			var nodes []*graph.Node
			for _, n := range byName {
				nodes = append(nodes, n)
			}
			_, _ = EncodeNodes(nodes)
			_ = g.NumNodes()
			_ = HostedVars(env.Nodes)
		}
		_, _ = SnapshotsFromWire(env.Snaps)
		_, _ = FeedsFromWire(env.Feeds)
	})
}
