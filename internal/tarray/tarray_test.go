package tarray

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestWriteReadRoundtrip(t *testing.T) {
	a := New("a", 3, false)
	if err := a.Write(1, tensor.Scalar(7), nil); err != nil {
		t.Fatal(err)
	}
	v, err := a.Read(1)
	if err != nil || v.ScalarValue() != 7 {
		t.Fatalf("%v %v", v, err)
	}
}

func TestWriteOnceEnforced(t *testing.T) {
	a := New("a", 2, false)
	if err := a.Write(0, tensor.Scalar(1), nil); err != nil {
		t.Fatal(err)
	}
	err := a.Write(0, tensor.Scalar(2), nil)
	if err == nil || !strings.Contains(err.Error(), "write-once") {
		t.Fatalf("want write-once error, got %v", err)
	}
}

func TestGradArrayAccumulates(t *testing.T) {
	a := New("a", 2, false)
	g := a.Grad("s")
	if err := g.Write(0, tensor.Scalar(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Write(0, tensor.Scalar(2), nil); err != nil {
		t.Fatal(err)
	}
	v, err := g.Read(0)
	if err != nil || v.ScalarValue() != 3 {
		t.Fatalf("accumulate: %v %v", v, err)
	}
}

func TestGradArrayPerSourceCaching(t *testing.T) {
	a := New("a", 2, false)
	if a.Grad("s1") != a.Grad("s1") {
		t.Fatal("same source must share the array")
	}
	if a.Grad("s1") == a.Grad("s2") {
		t.Fatal("distinct sources must be distinct")
	}
}

func TestGradArrayTracksForwardResize(t *testing.T) {
	a := New("a", 0, false)
	g := a.Grad("s") // created while forward is size 0
	if err := a.UnstackFrom(tensor.FromFloats([]float64{1, 2, 3}, 3), nil); err != nil {
		t.Fatal(err)
	}
	// The gradient array must follow the forward array's new size.
	if err := g.Write(2, tensor.Scalar(5), nil); err != nil {
		t.Fatalf("grad write after resize: %v", err)
	}
	if g.Size() == 0 {
		t.Fatal("size not synced")
	}
}

func TestStackAllRequiresAllWritten(t *testing.T) {
	a := New("a", 2, false)
	a.Write(0, tensor.Scalar(1), nil)
	if _, err := a.StackAll(); err == nil {
		t.Fatal("expected unwritten-location error")
	}
	a.Write(1, tensor.Scalar(2), nil)
	v, err := a.StackAll()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(v, tensor.FromFloats([]float64{1, 2}, 2)) {
		t.Fatalf("got %v", v)
	}
}

func TestUnstackSizeMismatch(t *testing.T) {
	a := New("a", 2, false)
	err := a.UnstackFrom(tensor.FromFloats([]float64{1, 2, 3}, 3), nil)
	if err == nil {
		t.Fatal("expected size mismatch")
	}
}

func TestReadErrors(t *testing.T) {
	a := New("a", 2, false)
	if _, err := a.Read(5); err == nil {
		t.Fatal("range")
	}
	if _, err := a.Read(0); err == nil {
		t.Fatal("unwritten")
	}
}
