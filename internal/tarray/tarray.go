// Package tarray implements TensorArray objects (§2.1 and §5.2 of the
// paper): arrays of tensors with random read/write access that can be used
// inside loops in a differentiable way.
//
// Each location may be written at most once in a forward computation (the
// §5.2 requirement); reads are unrestricted. The gradient TensorArray of a
// forward TensorArray accumulates (sums) multiple writes to the same
// location, which is what makes multiple forward reads of one location
// differentiate correctly.
//
// Operations take and produce a scalar "flow" tensor that the high-level
// wrappers thread through loop iterations, giving the executor the ordering
// edges it needs while keeping reads and writes as parallel as the data
// dependencies allow.
package tarray

import (
	"fmt"
	"sync"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Res is the TensorArray resource.
type Res struct {
	name string
	// accumulate makes writes to an already-written location add instead
	// of failing; set for gradient TensorArrays.
	accumulate bool
	// forward, for gradient arrays, references the array being
	// differentiated: the gradient array's size follows the forward
	// array's (which may grow via a later-ordered unstack even though
	// the gradient handle was created from the pre-unstack flow).
	forward *Res

	mu      sync.Mutex
	elems   []*tensor.Tensor
	written []bool
	grads   map[string]*Res // gradient arrays by source, created lazily
}

// syncSize grows a gradient array to its forward array's current size.
// Callers must hold a.mu.
func (a *Res) syncSize() {
	if a.forward == nil {
		return
	}
	n := a.forward.Size()
	for len(a.elems) < n {
		a.elems = append(a.elems, nil)
		a.written = append(a.written, false)
	}
}

// New returns a TensorArray of the given size.
func New(name string, size int, accumulate bool) *Res {
	return &Res{
		name:       name,
		accumulate: accumulate,
		elems:      make([]*tensor.Tensor, size),
		written:    make([]bool, size),
		grads:      map[string]*Res{},
	}
}

// ResourceName implements ops.Resource.
func (a *Res) ResourceName() string { return "tensorarray/" + a.name }

// Size returns the array length.
func (a *Res) Size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.elems)
}

// Write stores v at index ix. Writing an already-written location is an
// error unless the array accumulates (gradient arrays).
func (a *Res) Write(ix int, v *tensor.Tensor, mem ops.DeviceMem) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.syncSize()
	if ix < 0 || ix >= len(a.elems) {
		return fmt.Errorf("tensorarray %s: write index %d out of range [0,%d)", a.name, ix, len(a.elems))
	}
	if a.written[ix] {
		if !a.accumulate {
			return fmt.Errorf("tensorarray %s: location %d written twice (write-once semantics)", a.name, ix)
		}
		sum, err := tensor.Add(a.elems[ix], v)
		if err != nil {
			return fmt.Errorf("tensorarray %s: accumulate at %d: %w", a.name, ix, err)
		}
		a.elems[ix] = sum
		return nil
	}
	if mem != nil {
		if err := mem.Allocate(v.NumBytes()); err != nil {
			return fmt.Errorf("tensorarray %s: write: %w", a.name, err)
		}
	}
	a.elems[ix] = v
	a.written[ix] = true
	return nil
}

// Read returns the value at ix.
func (a *Res) Read(ix int) (*tensor.Tensor, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.syncSize()
	if ix < 0 || ix >= len(a.elems) {
		return nil, fmt.Errorf("tensorarray %s: read index %d out of range [0,%d)", a.name, ix, len(a.elems))
	}
	if !a.written[ix] {
		return nil, fmt.Errorf("tensorarray %s: read of unwritten location %d", a.name, ix)
	}
	return a.elems[ix], nil
}

// StackAll packs all elements along a new axis 0. Unwritten locations are
// an error.
func (a *Res) StackAll() (*tensor.Tensor, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.syncSize()
	if len(a.elems) == 0 {
		return nil, fmt.Errorf("tensorarray %s: stack of empty array", a.name)
	}
	for i, w := range a.written {
		if !w {
			return nil, fmt.Errorf("tensorarray %s: stack with unwritten location %d", a.name, i)
		}
	}
	return tensor.Stack(a.elems...)
}

// UnstackFrom splits v along axis 0 into the array (which must match in
// size, or be empty-sized in which case it is resized).
func (a *Res) UnstackFrom(v *tensor.Tensor, mem ops.DeviceMem) error {
	parts, err := tensor.Unstack(v)
	if err != nil {
		return fmt.Errorf("tensorarray %s: unstack: %w", a.name, err)
	}
	a.mu.Lock()
	if len(a.elems) == 0 {
		a.elems = make([]*tensor.Tensor, len(parts))
		a.written = make([]bool, len(parts))
	}
	if len(parts) != len(a.elems) {
		a.mu.Unlock()
		return fmt.Errorf("tensorarray %s: unstack of %d elements into array of size %d", a.name, len(parts), len(a.elems))
	}
	a.mu.Unlock()
	for i, p := range parts {
		if err := a.Write(i, p, mem); err != nil {
			return err
		}
	}
	return nil
}

// Grad returns (creating on first use) the gradient TensorArray for the
// given source label. The gradient array has the same size and accumulates
// multiple writes (§5.2).
func (a *Res) Grad(source string) *Res {
	a.mu.Lock()
	defer a.mu.Unlock()
	if g, ok := a.grads[source]; ok {
		return g
	}
	g := New(a.name+"@grad:"+source, len(a.elems), true)
	g.forward = a
	a.grads[source] = g
	return g
}

func taFromCtx(ctx *ops.KernelContext, input int) (*Res, error) {
	h, err := ctx.InputResource(input)
	if err != nil {
		return nil, err
	}
	ta, ok := h.(*Res)
	if !ok {
		return nil, fmt.Errorf("ops: %s(%s): handle is not a TensorArray", ctx.OpName, ctx.NodeName)
	}
	return ta, nil
}

func flowOut() ops.Value { return ops.TensorVal(tensor.Scalar(0)) }

func init() {
	// TensorArray(size) -> (handle, flow). Keyed by node name in the
	// per-step container.
	ops.Register(&ops.OpDef{Name: "TensorArray", NumOutputs: 2, Stateful: true, Kernel: func(ctx *ops.KernelContext) ([]ops.Value, error) {
		sizeT, err := ctx.Input(0)
		if err != nil {
			return nil, err
		}
		size := int(sizeT.ScalarIntValue())
		if size < 0 {
			return nil, fmt.Errorf("ops: TensorArray(%s): negative size %d", ctx.NodeName, size)
		}
		res := ctx.Env.StepRes().LookupOrCreate("ta/"+ctx.NodeName, func() ops.Resource {
			return New(ctx.NodeName, size, false)
		})
		return []ops.Value{ops.ResourceVal(res), flowOut()}, nil
	}})

	// TensorArrayWrite(handle, index, value, flow) -> flow.
	ops.Register(&ops.OpDef{Name: "TensorArrayWrite", NumOutputs: 1, Stateful: true, Kernel: func(ctx *ops.KernelContext) ([]ops.Value, error) {
		ta, err := taFromCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		ixT, err := ctx.Input(1)
		if err != nil {
			return nil, err
		}
		v, err := ctx.Input(2)
		if err != nil {
			return nil, err
		}
		if err := ta.Write(int(ixT.ScalarIntValue()), v, ctx.Mem); err != nil {
			return nil, err
		}
		return []ops.Value{flowOut()}, nil
	}})

	// TensorArrayRead(handle, index, flow) -> value.
	ops.Register(&ops.OpDef{Name: "TensorArrayRead", NumOutputs: 1, Stateful: true, Kernel: func(ctx *ops.KernelContext) ([]ops.Value, error) {
		ta, err := taFromCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		ixT, err := ctx.Input(1)
		if err != nil {
			return nil, err
		}
		v, err := ta.Read(int(ixT.ScalarIntValue()))
		if err != nil {
			return nil, err
		}
		return []ops.Value{ops.TensorVal(v)}, nil
	}})

	// TensorArrayStack(handle, flow) -> value.
	ops.Register(&ops.OpDef{Name: "TensorArrayStack", NumOutputs: 1, Stateful: true, Kernel: func(ctx *ops.KernelContext) ([]ops.Value, error) {
		ta, err := taFromCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		v, err := ta.StackAll()
		if err != nil {
			return nil, err
		}
		return []ops.Value{ops.TensorVal(v)}, nil
	}})

	// TensorArrayUnstack(handle, value, flow) -> flow.
	ops.Register(&ops.OpDef{Name: "TensorArrayUnstack", NumOutputs: 1, Stateful: true, Kernel: func(ctx *ops.KernelContext) ([]ops.Value, error) {
		ta, err := taFromCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		v, err := ctx.Input(1)
		if err != nil {
			return nil, err
		}
		if err := ta.UnstackFrom(v, ctx.Mem); err != nil {
			return nil, err
		}
		return []ops.Value{flowOut()}, nil
	}})

	// TensorArraySize(handle, flow) -> size.
	ops.Register(&ops.OpDef{Name: "TensorArraySize", NumOutputs: 1, Stateful: true, Kernel: func(ctx *ops.KernelContext) ([]ops.Value, error) {
		ta, err := taFromCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		return []ops.Value{ops.TensorVal(tensor.ScalarInt(int64(ta.Size())))}, nil
	}})

	// TensorArrayGrad(handle, flow) -> (grad handle, flow). The "source"
	// attr distinguishes gradient arrays arising from different
	// gradient subgraphs over the same forward array.
	ops.Register(&ops.OpDef{Name: "TensorArrayGrad", NumOutputs: 2, Stateful: true, Kernel: func(ctx *ops.KernelContext) ([]ops.Value, error) {
		ta, err := taFromCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		g := ta.Grad(ctx.AttrString("source"))
		return []ops.Value{ops.ResourceVal(g), flowOut()}, nil
	}})
}
