package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tensor"
)

// A cluster checkpoint is a directory tree:
//
//	<dir>/
//	  LATEST                 -> "step-<n>" (atomically updated last)
//	  step-<n>/
//	    MANIFEST.json        -> Manifest (written after every shard)
//	    shard-<worker>.ckpt  -> framed Encode() of that worker's variables
//
// Write order makes the checkpoint atomic as a whole: shards first, then
// the manifest that indexes them, then LATEST. A crash mid-checkpoint
// leaves LATEST pointing at the previous complete checkpoint; the previous
// step directory is only pruned after the new LATEST is durable.

// Manifest indexes one complete distributed checkpoint: which step it
// captured, the signature of the graph's restorable state (see GraphSig),
// and which worker contributed which variables.
type Manifest struct {
	// Sig is the graph signature (GraphSig over the variable names the
	// graph declares). Resume refuses a manifest whose signature does not
	// match the graph being resumed.
	Sig uint64 `json:"sig"`
	// Step is the last step whose effects the checkpoint contains.
	Step uint64 `json:"step"`
	// Shards lists the per-worker shard files, sorted by worker.
	Shards []Shard `json:"shards"`
}

// Shard is one worker's contribution to a checkpoint.
type Shard struct {
	Worker string `json:"worker"`
	// File is the shard's filename, relative to the manifest's directory.
	File string `json:"file"`
	// Vars names the variables stored in the shard, sorted.
	Vars []string `json:"vars"`
}

// GraphSig hashes the set of variable names a graph declares — the
// contract between a checkpoint and the graphs that may resume from it.
// It deliberately ignores placement, partitioning, and worker names:
// resuming on a different worker set (shards re-mapped) is exactly the
// point of the manifest layer.
func GraphSig(varNames []string) uint64 {
	names := append([]string(nil), varNames...)
	sort.Strings(names)
	// FNV-1a over the sorted names, newline-delimited.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, n := range names {
		for i := 0; i < len(n); i++ {
			h = (h ^ uint64(n[i])) * prime64
		}
		h = (h ^ '\n') * prime64
	}
	return h
}

func stepDirName(step uint64) string { return "step-" + strconv.FormatUint(step, 10) }

// WriteShard durably writes one worker's variables for a step and returns
// the shard entry for the manifest.
func WriteShard(dir string, step uint64, worker string, vars map[string]*tensor.Tensor) (Shard, error) {
	sd := filepath.Join(dir, stepDirName(step))
	if err := os.MkdirAll(sd, 0o755); err != nil {
		return Shard{}, err
	}
	var buf bytes.Buffer
	if err := Encode(&buf, vars); err != nil {
		return Shard{}, err
	}
	file := "shard-" + worker + ".ckpt"
	if err := WriteFileAtomic(filepath.Join(sd, file), buf.Bytes()); err != nil {
		return Shard{}, err
	}
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return Shard{Worker: worker, File: file, Vars: names}, nil
}

// WriteManifest publishes a checkpoint: the manifest goes into its step
// directory, then LATEST flips to it, then older step directories are
// pruned — keeping the immediately previous checkpoint so there are always
// two complete recovery points on disk.
func WriteManifest(dir string, m *Manifest) error {
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Worker < m.Shards[j].Worker })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	sd := filepath.Join(dir, stepDirName(m.Step))
	if err := os.MkdirAll(sd, 0o755); err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(sd, "MANIFEST.json"), data); err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(dir, "LATEST"), []byte(stepDirName(m.Step))); err != nil {
		return err
	}
	return pruneSteps(dir, m.Step)
}

// pruneSteps removes step directories older than the one immediately
// preceding current (LATEST and its predecessor survive).
func pruneSteps(dir string, current uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var steps []uint64
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "step-") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), "step-"), 10, 64)
		if err != nil || n >= current {
			continue
		}
		steps = append(steps, n)
	}
	if len(steps) <= 1 {
		return nil
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] > steps[j] })
	for _, n := range steps[1:] {
		if err := os.RemoveAll(filepath.Join(dir, stepDirName(n))); err != nil {
			return err
		}
	}
	return nil
}

// Latest loads the newest complete checkpoint's manifest and the directory
// holding its shards. A directory with no checkpoint yet returns
// os.ErrNotExist (callers distinguish "fresh start" from real failures).
func Latest(dir string) (*Manifest, string, error) {
	ptr, err := os.ReadFile(filepath.Join(dir, "LATEST"))
	if err != nil {
		return nil, "", err
	}
	sd := filepath.Join(dir, strings.TrimSpace(string(ptr)))
	data, err := os.ReadFile(filepath.Join(sd, "MANIFEST.json"))
	if err != nil {
		return nil, "", fmt.Errorf("checkpoint: LATEST points at %s but its manifest is unreadable: %w", sd, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, "", fmt.Errorf("checkpoint: manifest %s: %w", sd, err)
	}
	return &m, sd, nil
}

// ReadShard loads one shard file from a checkpoint directory.
func ReadShard(stepDir string, s Shard) (map[string]*tensor.Tensor, error) {
	f, err := os.Open(filepath.Join(stepDir, s.File))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: shard %s (worker %s): %w", s.File, s.Worker, err)
	}
	defer f.Close()
	vars, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: shard %s (worker %s): %w", s.File, s.Worker, err)
	}
	return vars, nil
}

// LoadState loads every shard of a checkpoint into one variable map,
// rejecting a variable that appears in two shards (each variable has
// exactly one owning worker at capture time).
func LoadState(stepDir string, m *Manifest) (map[string]*tensor.Tensor, error) {
	state := map[string]*tensor.Tensor{}
	owner := map[string]string{}
	for _, s := range m.Shards {
		vars, err := ReadShard(stepDir, s)
		if err != nil {
			return nil, err
		}
		for name, val := range vars {
			if prev, dup := owner[name]; dup {
				return nil, fmt.Errorf("checkpoint: variable %q appears in shards of both %s and %s", name, prev, s.Worker)
			}
			owner[name] = s.Worker
			state[name] = val
		}
	}
	return state, nil
}
