package checkpoint

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/ops"
	"repro/internal/tensor"
)

func setVar(t *testing.T, sess *ops.Resources, name string, v *tensor.Tensor) {
	t.Helper()
	res := sess.LookupOrCreate("var/"+name, func() ops.Resource { return ops.NewVariable(name) })
	res.(*ops.VariableRes).Set(v)
}

func getVar(t *testing.T, sess *ops.Resources, name string) *tensor.Tensor {
	t.Helper()
	res, ok := sess.Lookup("var/" + name)
	if !ok {
		t.Fatalf("variable %s missing", name)
	}
	v, err := res.(*ops.VariableRes).Value()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSaveRestoreRoundtrip(t *testing.T) {
	src := ops.NewResources()
	setVar(t, src, "w", tensor.FromFloats([]float64{1, 2, 3, 4}, 2, 2))
	setVar(t, src, "step", tensor.ScalarInt(42))
	setVar(t, src, "mask", tensor.FromBools([]bool{true, false}, 2))

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	if err := Restore(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(getVar(t, dst, "w"), tensor.FromFloats([]float64{1, 2, 3, 4}, 2, 2)) {
		t.Fatal("w mismatch")
	}
	if getVar(t, dst, "step").ScalarIntValue() != 42 {
		t.Fatal("step mismatch")
	}
	if getVar(t, dst, "mask").B[1] {
		t.Fatal("mask mismatch")
	}
}

func TestRestoreOverwritesExisting(t *testing.T) {
	src := ops.NewResources()
	setVar(t, src, "w", tensor.Scalar(1))
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	setVar(t, dst, "w", tensor.Scalar(999))
	if err := Restore(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if getVar(t, dst, "w").ScalarValue() != 1 {
		t.Fatal("restore did not overwrite")
	}
}

func TestSaveFileRestoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	src := ops.NewResources()
	setVar(t, src, "w", tensor.FromFloats([]float64{7}, 1))
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	if err := RestoreFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if getVar(t, dst, "w").F[0] != 7 {
		t.Fatal("file roundtrip")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	dst := ops.NewResources()
	if err := Restore(bytes.NewBufferString("not a checkpoint"), dst); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSaveSkipsUninitialized(t *testing.T) {
	src := ops.NewResources()
	src.LookupOrCreate("var/empty", func() ops.Resource { return ops.NewVariable("empty") })
	var buf bytes.Buffer
	if err := Save(&buf, src); err == nil {
		t.Fatal("expected error for uninitialized variable")
	}
}
