package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/tensor"
)

func setVar(t *testing.T, sess *ops.Resources, name string, v *tensor.Tensor) {
	t.Helper()
	res := sess.LookupOrCreate("var/"+name, func() ops.Resource { return ops.NewVariable(name) })
	res.(*ops.VariableRes).Set(v)
}

func getVar(t *testing.T, sess *ops.Resources, name string) *tensor.Tensor {
	t.Helper()
	res, ok := sess.Lookup("var/" + name)
	if !ok {
		t.Fatalf("variable %s missing", name)
	}
	v, err := res.(*ops.VariableRes).Value()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSaveRestoreRoundtrip(t *testing.T) {
	src := ops.NewResources()
	setVar(t, src, "w", tensor.FromFloats([]float64{1, 2, 3, 4}, 2, 2))
	setVar(t, src, "step", tensor.ScalarInt(42))
	setVar(t, src, "mask", tensor.FromBools([]bool{true, false}, 2))

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	if err := Restore(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(getVar(t, dst, "w"), tensor.FromFloats([]float64{1, 2, 3, 4}, 2, 2)) {
		t.Fatal("w mismatch")
	}
	if getVar(t, dst, "step").ScalarIntValue() != 42 {
		t.Fatal("step mismatch")
	}
	if getVar(t, dst, "mask").B[1] {
		t.Fatal("mask mismatch")
	}
}

func TestRestoreOverwritesExisting(t *testing.T) {
	src := ops.NewResources()
	setVar(t, src, "w", tensor.Scalar(1))
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	setVar(t, dst, "w", tensor.Scalar(999))
	if err := Restore(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if getVar(t, dst, "w").ScalarValue() != 1 {
		t.Fatal("restore did not overwrite")
	}
}

func TestSaveFileRestoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	src := ops.NewResources()
	setVar(t, src, "w", tensor.FromFloats([]float64{7}, 1))
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	if err := RestoreFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if getVar(t, dst, "w").F[0] != 7 {
		t.Fatal("file roundtrip")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	dst := ops.NewResources()
	if err := Restore(bytes.NewBufferString("not a checkpoint"), dst); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSaveSkipsUninitialized(t *testing.T) {
	src := ops.NewResources()
	src.LookupOrCreate("var/empty", func() ops.Resource { return ops.NewVariable("empty") })
	var buf bytes.Buffer
	if err := Save(&buf, src); err == nil {
		t.Fatal("expected error for uninitialized variable")
	}
}

// TestRoundtripEveryDType checks that every dtype — including empty
// tensors, which have a shape but no payload — survives Save/Restore
// bit-identically.
func TestRoundtripEveryDType(t *testing.T) {
	cases := map[string]*tensor.Tensor{
		"f":       tensor.FromFloats([]float64{1.5, -2.25, 0, 1e300}, 2, 2),
		"f_empty": tensor.FromFloats(nil, 0),
		"i":       tensor.FromInts([]int64{-9223372036854775808, 9223372036854775807, 0}, 3),
		"i_empty": tensor.FromInts(nil, 0, 3),
		"b":       tensor.FromBools([]bool{true, false, true}, 3),
		"b_empty": tensor.FromBools(nil, 0),
		"s":       tensor.FromStrings([]string{"", "héllo", "a\x00b"}, 3),
		"s_empty": tensor.FromStrings(nil, 0),
	}
	src := ops.NewResources()
	for name, v := range cases {
		setVar(t, src, name, v)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	if err := Restore(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for name, want := range cases {
		got := getVar(t, dst, name)
		if got.DType() != want.DType() {
			t.Fatalf("%s: dtype %v, want %v", name, got.DType(), want.DType())
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("%s: got %v, want %v", name, got, want)
		}
		if len(got.Shape()) != len(want.Shape()) {
			t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
		}
	}
}

// TestRestoreTruncated: a checkpoint cut off at any point must fail with a
// clear truncation/corruption error, never panic or partially restore.
func TestRestoreTruncated(t *testing.T) {
	src := ops.NewResources()
	setVar(t, src, "w", tensor.FromFloats([]float64{1, 2, 3, 4, 5, 6}, 2, 3))
	setVar(t, src, "name", tensor.FromStrings([]string{"x"}, 1))
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 8, 19, 20, len(full) / 2, len(full) - 1} {
		dst := ops.NewResources()
		err := Restore(bytes.NewReader(full[:cut]), dst)
		if err == nil {
			t.Fatalf("restore of %d/%d bytes succeeded", cut, len(full))
		}
		if !strings.Contains(err.Error(), "checkpoint:") {
			t.Fatalf("cut %d: unhelpful error %v", cut, err)
		}
		if len(dst.Names()) != 0 {
			t.Fatalf("cut %d: partial restore created %v", cut, dst.Names())
		}
	}
}

// TestRestoreCorrupt: a bit flip anywhere in the payload is caught by the
// checksum before gob ever sees the bytes.
func TestRestoreCorrupt(t *testing.T) {
	src := ops.NewResources()
	setVar(t, src, "w", tensor.FromFloats([]float64{7, 8, 9}, 3))
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, pos := range []int{20, 25, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		err := Restore(bytes.NewReader(bad), ops.NewResources())
		if err == nil {
			t.Fatalf("flip at %d: restore succeeded", pos)
		}
		if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "decode") {
			t.Fatalf("flip at %d: error does not name corruption: %v", pos, err)
		}
	}
}

// TestSaveFileKeepsPreviousOnFailure: writing over an existing checkpoint
// goes through a temp file, so the old file survives until the new one is
// fully durable (and garbage in the directory never shadows it).
func TestSaveFileAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	src := ops.NewResources()
	setVar(t, src, "w", tensor.Scalar(1))
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	setVar(t, src, "w", tensor.Scalar(2))
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := ops.NewResources()
	if err := RestoreFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if getVar(t, dst, "w").ScalarValue() != 2 {
		t.Fatal("second save not visible")
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want just the checkpoint", len(ents))
	}
}

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	aVars := map[string]*tensor.Tensor{"wA/x": tensor.Scalar(1), "shared": tensor.ScalarInt(5)}
	bVars := map[string]*tensor.Tensor{"wB/y": tensor.FromFloats([]float64{1, 2}, 2)}
	sa, err := WriteShard(dir, 10, "wA", aVars)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := WriteShard(dir, 10, "wB", bVars)
	if err != nil {
		t.Fatal(err)
	}
	sig := GraphSig([]string{"wA/x", "shared", "wB/y"})
	if err := WriteManifest(dir, &Manifest{Sig: sig, Step: 10, Shards: []Shard{sa, sb}}); err != nil {
		t.Fatal(err)
	}
	m, sd, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Step != 10 || m.Sig != sig {
		t.Fatalf("manifest step=%d sig=%x, want 10/%x", m.Step, m.Sig, sig)
	}
	state, err := LoadState(sd, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 3 || state["shared"].ScalarIntValue() != 5 {
		t.Fatalf("state %v", state)
	}
}

// TestManifestPruneKeepsPrevious: after publishing step N, the step-N and
// immediately previous checkpoints remain; older ones are pruned.
func TestManifestPruneKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	vars := map[string]*tensor.Tensor{"v": tensor.Scalar(1)}
	for _, step := range []uint64{5, 10, 15} {
		s, err := WriteShard(dir, step, "wA", vars)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteManifest(dir, &Manifest{Sig: 1, Step: step, Shards: []Shard{s}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "step-5")); !os.IsNotExist(err) {
		t.Fatal("step-5 should be pruned")
	}
	for _, keep := range []string{"step-10", "step-15"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Fatalf("%s should be kept: %v", keep, err)
		}
	}
	m, _, err := Latest(dir)
	if err != nil || m.Step != 15 {
		t.Fatalf("latest %v, %v", m, err)
	}
}

// TestLatestMissing: a fresh directory reports os.ErrNotExist so callers
// can distinguish "no checkpoint yet" from a real failure.
func TestLatestMissing(t *testing.T) {
	_, _, err := Latest(t.TempDir())
	if !os.IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

// TestGraphSigOrderInsensitive: the signature is a set hash, not a list
// hash — partitioning order must not change it.
func TestGraphSigOrderInsensitive(t *testing.T) {
	a := GraphSig([]string{"x", "y", "z"})
	b := GraphSig([]string{"z", "x", "y"})
	if a != b {
		t.Fatal("sig depends on order")
	}
	if GraphSig([]string{"x", "y"}) == a {
		t.Fatal("sig ignores membership")
	}
	if GraphSig([]string{"xy", "z"}) == GraphSig([]string{"x", "yz"}) {
		t.Fatal("sig is delimiter-blind")
	}
}
