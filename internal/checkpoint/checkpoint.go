// Package checkpoint implements the coarse-grained checkpointing the
// paper's failure model relies on (§3): iterative programs run to
// completion between checkpoints of the session's variables, with no
// fine-grained fault tolerance inside a step. Variables are serialized with
// encoding/gob inside a length- and checksum-framed envelope, so a
// truncated or corrupted file is reported as such instead of producing a
// garbled decode (or a partial restore).
//
// The package has two layers:
//
//   - Single-process snapshots: Save/Restore (streams) and
//     SaveFile/RestoreFile (durable files, written atomically).
//   - Cluster checkpoints (manifest.go): per-worker shard files plus a
//     manifest keyed by graph signature + step, the on-disk format behind
//     distrib.TCPCluster.Checkpoint and distrib.Fleet.Resume.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// snapshot is the serialized form of one variable.
type snapshot struct {
	Name  string
	DType int
	Shape []int
	F     []float64
	I     []int64
	B     []bool
	S     []string
}

// file is the serialized checkpoint payload (inside the framed envelope).
type file struct {
	Version int
	Vars    []snapshot
}

// magic opens every framed checkpoint; a file that does not start with it
// is not a checkpoint at all (as opposed to a damaged one).
var magic = []byte("DCFCKPT1")

// Capture snapshots every initialized variable in the session container as
// a name -> value map. Variable values are immutable once published (every
// assignment installs a fresh tensor), so the returned map is a consistent
// point-in-time snapshot as long as no step is mutating variables
// concurrently — the caller provides that quiescence (§3: checkpoints
// happen at step boundaries).
func Capture(sess *ops.Resources) (map[string]*tensor.Tensor, error) {
	vars := map[string]*tensor.Tensor{}
	for _, name := range sess.Names() {
		if !strings.HasPrefix(name, "var/") {
			continue
		}
		res, _ := sess.Lookup(name)
		v, ok := res.(*ops.VariableRes)
		if !ok {
			continue
		}
		val, err := v.Value()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: variable %s: %w", name, err)
		}
		vars[strings.TrimPrefix(name, "var/")] = val
	}
	return vars, nil
}

// Apply assigns every captured variable into the session container,
// creating missing variables and overwriting existing ones.
func Apply(vars map[string]*tensor.Tensor, sess *ops.Resources) error {
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := sess.LookupOrCreate("var/"+name, func() ops.Resource {
			return ops.NewVariable(name)
		})
		v, ok := res.(*ops.VariableRes)
		if !ok {
			return fmt.Errorf("checkpoint: resource %s is not a variable", name)
		}
		v.Set(vars[name])
	}
	return nil
}

// Encode writes a variable map to w in the framed checkpoint format:
// magic, payload length, CRC-32 of the payload, then the gob payload.
// Variables are sorted by name so identical states produce identical bytes.
func Encode(w io.Writer, vars map[string]*tensor.Tensor) error {
	f := file{Version: 1}
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		val := vars[name]
		if val == nil {
			return fmt.Errorf("checkpoint: variable %s has nil value", name)
		}
		f.Vars = append(f.Vars, snapshot{
			Name:  name,
			DType: int(val.DType()),
			Shape: val.Shape(),
			F:     val.F,
			I:     val.I,
			B:     val.B,
			S:     val.S,
		})
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(f); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	var hdr [20]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}

// Decode reads a framed checkpoint back into a variable map. Truncated or
// corrupted input is reported explicitly (checksum and length are verified
// before the payload is decoded), never as a panic or a partial map.
func Decode(r io.Reader) (map[string]*tensor.Tensor, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated header (not a checkpoint?): %w", err)
	}
	if !bytes.Equal(hdr[:8], magic) {
		return nil, fmt.Errorf("checkpoint: bad magic %q: not a checkpoint file", hdr[:8])
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	const maxPayload = 1 << 40
	if n > maxPayload {
		return nil, fmt.Errorf("checkpoint: implausible payload length %d (corrupt header)", n)
	}
	// Read incrementally rather than preallocating n bytes: the length
	// field is untrusted, and a lying header over a short stream must not
	// allocate gigabytes before the truncation is noticed.
	payload, err := io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading payload: %w", err)
	}
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("checkpoint: truncated payload (%d bytes expected, %d present)", n, len(payload))
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[16:20]); got != want {
		return nil, fmt.Errorf("checkpoint: corrupt payload (crc %08x, want %08x)", got, want)
	}
	var f file
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", f.Version)
	}
	vars := make(map[string]*tensor.Tensor, len(f.Vars))
	for _, s := range f.Vars {
		// The decoded shape is untrusted even after the CRC passes (the
		// file may have been *encoded* corrupt): validate dimensions and
		// element counts before the panicking tensor constructors run.
		var elems int
		switch tensor.DType(s.DType) {
		case tensor.Float:
			elems = len(s.F)
		case tensor.Int:
			elems = len(s.I)
		case tensor.Bool:
			elems = len(s.B)
		case tensor.Str:
			elems = len(s.S)
		default:
			return nil, fmt.Errorf("checkpoint: variable %s: unknown dtype %d", s.Name, s.DType)
		}
		if err := tensor.CheckShape(s.Shape, elems); err != nil {
			return nil, fmt.Errorf("checkpoint: variable %s: %w", s.Name, err)
		}
		var val *tensor.Tensor
		switch tensor.DType(s.DType) {
		case tensor.Int:
			val = tensor.FromInts(s.I, s.Shape...)
		case tensor.Bool:
			val = tensor.FromBools(s.B, s.Shape...)
		case tensor.Str:
			val = tensor.FromStrings(s.S, s.Shape...)
		default:
			val = tensor.FromFloats(s.F, s.Shape...)
		}
		vars[s.Name] = val
	}
	return vars, nil
}

// Save writes all variables in the session container to w.
func Save(w io.Writer, sess *ops.Resources) error {
	vars, err := Capture(sess)
	if err != nil {
		return err
	}
	return Encode(w, vars)
}

// Restore reads a checkpoint and assigns every variable into the session
// container (creating missing variables).
func Restore(r io.Reader, sess *ops.Resources) error {
	vars, err := Decode(r)
	if err != nil {
		return err
	}
	return Apply(vars, sess)
}

// SaveFile durably writes a checkpoint to path. The bytes go to a
// same-directory temp file first, which is fsynced before an atomic rename
// over path (and the directory is fsynced so the rename itself is durable)
// — a crash at any point leaves either the complete previous checkpoint or
// the complete new one, never a truncated mix.
func SaveFile(path string, sess *ops.Resources) error {
	vars, err := Capture(sess)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := Encode(&buf, vars); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes())
}

// RestoreFile reads a checkpoint from path.
func RestoreFile(path string, sess *ops.Resources) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Restore(f, sess)
}

// WriteFileAtomic durably writes data to path: temp file in the same
// directory, fsync, rename, directory fsync. The previous contents of path
// remain intact until the replacement is fully on disk.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Filesystems that do not support directory fsync (some CI overlays) make
// it a no-op rather than an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
