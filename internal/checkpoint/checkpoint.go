// Package checkpoint implements the coarse-grained checkpointing the
// paper's failure model relies on (§3): iterative programs run to
// completion between checkpoints of the session's variables, with no
// fine-grained fault tolerance inside a step. Variables are serialized with
// encoding/gob.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// snapshot is the serialized form of one variable.
type snapshot struct {
	Name  string
	DType int
	Shape []int
	F     []float64
	I     []int64
	B     []bool
	S     []string
}

// file is the serialized checkpoint.
type file struct {
	Version int
	Vars    []snapshot
}

// Save writes all variables in the session container to w.
func Save(w io.Writer, sess *ops.Resources) error {
	var vars []snapshot
	for _, name := range sess.Names() {
		if !strings.HasPrefix(name, "var/") {
			continue
		}
		res, _ := sess.Lookup(name)
		v, ok := res.(*ops.VariableRes)
		if !ok {
			continue
		}
		val, err := v.Value()
		if err != nil {
			return fmt.Errorf("checkpoint: variable %s: %w", name, err)
		}
		vars = append(vars, snapshot{
			Name:  strings.TrimPrefix(name, "var/"),
			DType: int(val.DType()),
			Shape: val.Shape(),
			F:     val.F,
			I:     val.I,
			B:     val.B,
			S:     val.S,
		})
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	return gob.NewEncoder(w).Encode(file{Version: 1, Vars: vars})
}

// Restore reads a checkpoint and assigns every variable into the session
// container (creating missing variables).
func Restore(r io.Reader, sess *ops.Resources) error {
	var f file
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("checkpoint: decode: %w", err)
	}
	if f.Version != 1 {
		return fmt.Errorf("checkpoint: unsupported version %d", f.Version)
	}
	for _, s := range f.Vars {
		var val *tensor.Tensor
		switch tensor.DType(s.DType) {
		case tensor.Float:
			val = tensor.FromFloats(s.F, s.Shape...)
		case tensor.Int:
			val = tensor.FromInts(s.I, s.Shape...)
		case tensor.Bool:
			val = tensor.FromBools(s.B, s.Shape...)
		case tensor.Str:
			val = tensor.FromStrings(s.S, s.Shape...)
		default:
			return fmt.Errorf("checkpoint: variable %s: unknown dtype %d", s.Name, s.DType)
		}
		res := sess.LookupOrCreate("var/"+s.Name, func() ops.Resource {
			return ops.NewVariable(s.Name)
		})
		v, ok := res.(*ops.VariableRes)
		if !ok {
			return fmt.Errorf("checkpoint: resource %s is not a variable", s.Name)
		}
		v.Set(val)
	}
	return nil
}

// SaveFile writes a checkpoint to path (atomically via a temp file).
func SaveFile(path string, sess *ops.Resources) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, sess); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreFile reads a checkpoint from path.
func RestoreFile(path string, sess *ops.Resources) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Restore(f, sess)
}
