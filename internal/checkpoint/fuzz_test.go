package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"testing"

	"repro/internal/tensor"
)

// frame wraps payload in valid checkpoint framing (magic, length, CRC) so
// fuzz mutations reach the gob and tensor-reconstruction layers instead of
// dying at the checksum.
func frame(payload []byte) []byte {
	var out bytes.Buffer
	var hdr [20]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))
	out.Write(hdr[:])
	out.Write(payload)
	return out.Bytes()
}

func gobBytes(t *testing.F, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCheckpointDecode asserts Decode never panics: malformed framing,
// malformed gob, and — the interesting layer — well-framed payloads whose
// decoded shapes are hostile (negative dims, element-count mismatches,
// overflow-sized dims) must all come back as errors.
func FuzzCheckpointDecode(f *testing.F) {
	// A legitimate checkpoint.
	var good bytes.Buffer
	vars := map[string]*tensor.Tensor{
		"w": tensor.FromFloats([]float64{1, 2, 3, 4, 5, 6}, 2, 3),
		"n": tensor.FromInts([]int64{7}, 1),
		"m": tensor.FromBools([]bool{true, false}, 2),
		"s": tensor.FromStrings([]string{"a"}, 1),
	}
	if err := Encode(&good, vars); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:10]) // truncated header
	f.Add(good.Bytes()[:25]) // truncated payload

	// Correctly framed but hostile payloads: these were encoded corrupt,
	// so the CRC passes and only shape validation stands between the
	// decoder and a panicking constructor.
	evil := []file{
		{Version: 1, Vars: []snapshot{{Name: "neg", DType: int(tensor.Float), Shape: []int{-1}, F: []float64{1}}}},
		{Version: 1, Vars: []snapshot{{Name: "short", DType: int(tensor.Float), Shape: []int{4}, F: []float64{1}}}},
		{Version: 1, Vars: []snapshot{{Name: "ovf", DType: int(tensor.Int), Shape: []int{1 << 32, 1 << 32}, I: nil}}},
		{Version: 1, Vars: []snapshot{{Name: "dtype", DType: 99, Shape: []int{1}}}},
		{Version: 7},
	}
	for i := range evil {
		f.Add(frame(gobBytes(f, evil[i])))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw: the frame itself is fuzzed.
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			// A clean decode must round-trip through Encode.
			got, _ := Decode(bytes.NewReader(data))
			var buf bytes.Buffer
			if err := Encode(&buf, got); err != nil {
				t.Fatalf("decoded vars fail to re-encode: %v", err)
			}
		}
		// Framed: the payload behind a valid header is fuzzed, driving the
		// gob decoder and tensor reconstruction directly.
		_, _ = Decode(bytes.NewReader(frame(data)))
	})
}
