package verify_test

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// gb builds deliberately ill-formed graphs; graph.AddNode validates almost
// nothing, which is exactly what these fixtures need.
type gb struct {
	t *testing.T
	g *graph.Graph
}

func newGB(t *testing.T) *gb { return &gb{t: t, g: graph.New()} }

func (b *gb) node(op, name string, outs int, attrs map[string]any, ins ...graph.Output) *graph.Node {
	b.t.Helper()
	n, err := b.g.AddNode(graph.NodeArgs{Op: op, Name: name, NumOutputs: outs, Attrs: attrs, Inputs: ins})
	if err != nil {
		b.t.Fatalf("AddNode(%s %s): %v", op, name, err)
	}
	return n
}

func (b *gb) constF(name string, vals []float64, shape ...int) *graph.Node {
	return b.node("Const", name, 1, map[string]any{"value": tensor.FromFloats(vals, shape...)})
}

func (b *gb) constI(name string, v int64) *graph.Node {
	return b.node("Const", name, 1, map[string]any{"value": tensor.ScalarInt(v)})
}

func (b *gb) constB(name string, v bool) *graph.Node {
	return b.node("Const", name, 1, map[string]any{"value": tensor.FromBools([]bool{v})})
}

func enterAttrs(frame string) map[string]any {
	return map[string]any{"frame_name": frame, "parallel_iterations": 0}
}

// illFormed is one fixture: build mutates the graph (and may adjust opts);
// the verifier must emit at least one diagnostic with wantCode, and when
// wantNode/wantFrame are set, that diagnostic must name them.
type illFormed struct {
	name      string
	wantCode  string
	wantNode  string
	wantFrame string
	wantPort  int // -2 = don't check
	build     func(b *gb, opts *verify.Options)
}

func illFixtures() []illFormed {
	return []illFormed{
		{
			name: "unknown op", wantCode: "unknown-op", wantNode: "mystery", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				b.node("FluxCapacitor", "mystery", 1, nil)
			},
		},
		{
			name: "output arity disagrees with registry", wantCode: "output-arity", wantNode: "add", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				b.node("Add", "add", 2, nil, c.Out(0), c.Out(0))
			},
		},
		{
			name: "switch with one input", wantCode: "input-arity", wantNode: "sw", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				b.node("Switch", "sw", 2, nil, c.Out(0))
			},
		},
		{
			name: "cycle not through NextIteration", wantCode: "cycle", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				a := b.node("Identity", "a", 1, nil, c.Out(0))
				x := b.node("Identity", "x", 1, nil, a.Out(0))
				a.ReplaceInput(0, x.Out(0))
			},
		},
		{
			name: "enter without frame name", wantCode: "enter-no-frame", wantNode: "e", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				b.node("Enter", "e", 1, map[string]any{}, c.Out(0))
			},
		},
		{
			name: "frame entered from two sibling frames", wantCode: "frame-nesting", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				ea := b.node("Enter", "ea", 1, enterAttrs("A"), c.Out(0))
				eb := b.node("Enter", "eb", 1, enterAttrs("B"), c.Out(0))
				b.node("Enter", "el1", 1, enterAttrs("L"), ea.Out(0))
				b.node("Enter", "el2", 1, enterAttrs("L"), eb.Out(0))
				opts.Complete = false // exits are not the point here
			},
		},
		{
			name: "next-iteration feeding a non-merge", wantCode: "ni-consumer", wantNode: "ni", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				ni := b.node("NextIteration", "ni", 1, nil, c.Out(0))
				b.node("Identity", "id", 1, nil, ni.Out(0))
			},
		},
		{
			name: "back edge crossing out of its frame", wantCode: "ni-frame-escape",
			wantNode: "ni", wantFrame: "L", wantPort: 0,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				e := b.node("Enter", "e", 1, enterAttrs("L"), c.Out(0))
				m := b.node("Merge", "m", 1, nil, e.Out(0), e.Out(0))
				outside := b.constF("outside", []float64{2})
				ni := b.node("NextIteration", "ni", 1, nil, outside.Out(0))
				m.ReplaceInput(1, ni.Out(0))
				ex := b.node("Exit", "exit", 1, nil, m.Out(0))
				_ = ex
				opts.Complete = true
			},
		},
		{
			name: "exit from the root frame", wantCode: "exit-outside-frame", wantNode: "ex", wantPort: 0,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				b.node("Exit", "ex", 1, nil, c.Out(0))
			},
		},
		{
			name: "loop frame with no exit", wantCode: "frame-no-exit", wantFrame: "L", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				pred := b.constB("pred", true)
				e := b.node("Enter", "e", 1, enterAttrs("L"), c.Out(0))
				m := b.node("Merge", "m", 1, nil, e.Out(0), e.Out(0))
				sw := b.node("Switch", "sw", 2, nil, m.Out(0), pred.Out(0))
				ni := b.node("NextIteration", "ni", 1, nil, sw.Out(1))
				m.ReplaceInput(1, ni.Out(0))
				opts.Complete = true
			},
		},
		{
			name: "merge whose inputs can never fire", wantCode: "merge-dead-input", wantNode: "m", wantPort: 0,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				m := b.node("Merge", "m", 1, nil, c.Out(0))
				ni := b.node("NextIteration", "ni", 1, nil, m.Out(0))
				m.ReplaceInput(0, ni.Out(0))
			},
		},
		{
			name: "fetch that can never produce a value", wantCode: "fetch-dead", wantNode: "m", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				m := b.node("Merge", "m", 1, nil, c.Out(0))
				ni := b.node("NextIteration", "ni", 1, nil, m.Out(0))
				m.ReplaceInput(0, ni.Out(0))
				opts.Fetches = []graph.Output{m.Out(0)}
			},
		},
		{
			name: "feed naming a missing node", wantCode: "feed-missing", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				b.constF("c", []float64{1})
				opts.Feeds = []string{"no_such_node"}
			},
		},
		{
			name: "feed naming a non-placeholder", wantCode: "feed-not-placeholder", wantNode: "c", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				b.constF("c", []float64{1})
				opts.Feeds = []string{"c"}
			},
		},
		{
			name: "fetch of a nonexistent output port", wantCode: "fetch-invalid-port", wantNode: "add", wantPort: 1,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				add := b.node("Add", "add", 1, nil, c.Out(0), c.Out(0))
				opts.Fetches = []graph.Output{{Node: add, Index: 1}}
			},
		},
		{
			name: "switch predicate is not a bool", wantCode: "switch-pred-dtype", wantNode: "sw", wantPort: 1,
			build: func(b *gb, opts *verify.Options) {
				d := b.constF("d", []float64{1})
				p := b.constI("p", 3)
				b.node("Switch", "sw", 2, nil, d.Out(0), p.Out(0))
			},
		},
		{
			name: "switch predicate is not a scalar", wantCode: "switch-pred-shape", wantNode: "sw", wantPort: 1,
			build: func(b *gb, opts *verify.Options) {
				d := b.constF("d", []float64{1})
				p := b.node("Const", "p", 1, map[string]any{"value": tensor.FromBools([]bool{true, false}, 2)})
				b.node("Switch", "sw", 2, nil, d.Out(0), p.Out(0))
			},
		},
		{
			name: "loopcond on a non-bool", wantCode: "loopcond-dtype", wantNode: "lc", wantPort: 0,
			build: func(b *gb, opts *verify.Options) {
				p := b.constI("p", 1)
				b.node("LoopCond", "lc", 1, nil, p.Out(0))
			},
		},
		{
			name: "mixed dtypes into add", wantCode: "dtype-mismatch", wantNode: "add", wantPort: 1,
			build: func(b *gb, opts *verify.Options) {
				f := b.constF("f", []float64{1})
				i := b.constI("i", 1)
				b.node("Add", "add", 1, nil, f.Out(0), i.Out(0))
			},
		},
		{
			name: "unbroadcastable operand shapes", wantCode: "shape-mismatch", wantNode: "add", wantPort: 1,
			build: func(b *gb, opts *verify.Options) {
				a := b.constF("a", []float64{1, 2}, 2)
				c := b.constF("c", []float64{1, 2, 3}, 3)
				b.node("Add", "add", 1, nil, a.Out(0), c.Out(0))
			},
		},
		{
			name: "matmul inner dimensions disagree", wantCode: "matmul-inner", wantNode: "mm", wantPort: 1,
			build: func(b *gb, opts *verify.Options) {
				a := b.constF("a", make([]float64, 6), 2, 3)
				c := b.constF("c", make([]float64, 20), 4, 5)
				b.node("MatMul", "mm", 1, nil, a.Out(0), c.Out(0))
			},
		},
		{
			name: "const without a value", wantCode: "const-no-value", wantNode: "c", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				b.node("Const", "c", 1, nil)
			},
		},
		{
			name: "send without a key", wantCode: "sendrecv-no-key", wantNode: "s", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				b.node("Send", "s", 0, nil, c.Out(0))
			},
		},
		{
			name: "recv with no paired send", wantCode: "recv-unpaired", wantNode: "r", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				b.node("Recv", "r", 1, map[string]any{"key": "e=x:0"})
				opts.Complete = true
			},
		},
		{
			name: "send with no paired recv", wantCode: "send-unpaired", wantNode: "s", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				b.node("Send", "s", 0, map[string]any{"key": "e=c:0"}, c.Out(0))
				opts.Complete = true
			},
		},
		{
			name: "duplicate rendezvous key", wantCode: "sendrecv-dup", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				c := b.constF("c", []float64{1})
				b.node("Send", "s1", 0, map[string]any{"key": "e=c:0"}, c.Out(0))
				b.node("Send", "s2", 0, map[string]any{"key": "e=c:0"}, c.Out(0))
				b.node("Recv", "r", 1, map[string]any{"key": "e=c:0"})
				opts.Complete = true
			},
		},
		{
			name: "cross-partition rendezvous deadlock", wantCode: "rendezvous-cycle", wantPort: -2,
			build: func(b *gb, opts *verify.Options) {
				// Partition A: recv(k2) -> send(k1); partition B:
				// recv(k1) -> send(k2). Each key pairs, yet neither value
				// can ever be produced.
				ra := b.node("Recv", "ra", 1, map[string]any{"key": "k2"})
				ia := b.node("Identity", "ia", 1, nil, ra.Out(0))
				b.node("Send", "sa", 0, map[string]any{"key": "k1"}, ia.Out(0))
				rb := b.node("Recv", "rb", 1, map[string]any{"key": "k1"})
				ib := b.node("Identity", "ib", 1, nil, rb.Out(0))
				b.node("Send", "sb", 0, map[string]any{"key": "k2"}, ib.Out(0))
				opts.Complete = true
			},
		},
	}
}

func TestRejectsIllFormedGraphs(t *testing.T) {
	for _, tc := range illFixtures() {
		t.Run(tc.name, func(t *testing.T) {
			b := newGB(t)
			opts := verify.Options{}
			tc.build(b, &opts)
			ds := verify.Check(b.g, opts)
			if len(ds) == 0 {
				t.Fatalf("expected diagnostics, got none")
			}
			var hit *verify.Diagnostic
			for i := range ds {
				if ds[i].Code == tc.wantCode {
					hit = &ds[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %q diagnostic; got: %v", tc.wantCode, ds)
			}
			if tc.wantNode != "" && hit.Node != tc.wantNode {
				t.Errorf("diagnostic names node %q, want %q (%v)", hit.Node, tc.wantNode, hit)
			}
			if tc.wantFrame != "" && hit.Frame != tc.wantFrame {
				t.Errorf("diagnostic names frame %q, want %q (%v)", hit.Frame, tc.wantFrame, hit)
			}
			if tc.wantPort != -2 && hit.Port != tc.wantPort {
				t.Errorf("diagnostic names port %d, want %d (%v)", hit.Port, tc.wantPort, hit)
			}
			// Every diagnostic must render with node and op context.
			if hit.Node != "" && !strings.Contains(hit.Error(), hit.Node) {
				t.Errorf("rendered diagnostic %q does not name its node", hit.Error())
			}
		})
	}
}

func TestDiagnosticsError(t *testing.T) {
	var ds verify.Diagnostics
	if ds.Err() != nil {
		t.Fatal("empty diagnostics must convert to a nil error")
	}
	ds = append(ds, verify.Diagnostic{Node: "n", Op: "Add", Port: 1, Frame: "L", Code: "x", Msg: "boom"})
	msg := ds.Error()
	for _, want := range []string{"n", "Add", "port 1", `frame "L"`, "boom", "1 finding"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Diagnostics.Error() = %q: missing %q", msg, want)
		}
	}
}
