// Static peak-memory estimation: a tensor liveness pass over verified
// graphs that bounds, per node, how many tensor bytes can be resident at
// the instant that node executes, and takes the maximum as the step's peak.
//
// The bound is for the *most parallel* execution the executor permits: an
// edge's value is counted live at node n unless it provably cannot coexist
// with n's execution — either its producer is a strict descendant of n
// (not yet produced) or every consumer is a strict ancestor of n (already
// consumed). Loop-frame values are multiplied by the frame's iteration
// window (parallel_iterations), because that many iterations' copies can
// be in flight at once. At the true peak instant some node is executing,
// so max-over-nodes of the per-node clique is a sound upper bound.
//
// Unknown dimensions do not break the analysis: every cost splits into a
// statically known factor and symbolic factors — "rows" (the product of
// unknown dims, typically the batch size) and "iters" (loop trip count,
// for stack- and tensor-array-accumulated gradient state). The caller
// resolves the symbols with Bound(rows, iters).
//
// The pass never runs on the step path: it is invoked from dcfgraph
// -analyze, tests, and (eventually) the budgeted-allocator planner.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// MemOptions configures one EstimateMemory run.
type MemOptions struct {
	// Check selects the node set / run signature exactly like Check.
	// Fetched outputs are kept live to the end of the step.
	Check Options

	// DefaultWindow is the loop iteration window assumed for frames whose
	// Enters carry no parallel_iterations attribute; 0 means 32, the
	// executor's own default.
	DefaultWindow int
}

// MemEstimate is the static peak-resident-bytes bound for one node set.
// The total bound is FixedBytes + rows·PerRowBytes + iters·PerIterBytes +
// rows·iters·PerRowIterBytes, where rows is the product of the graph's
// unknown (batch-like) dimensions and iters the loop trip count.
type MemEstimate struct {
	FixedBytes      int64 // statically known peak bytes
	PerRowBytes     int64 // coefficient of unknown-dimension product
	PerIterBytes    int64 // coefficient of loop trip count (stack/TA growth)
	PerRowIterBytes int64 // coefficient of rows·iters

	// StepBytes of FixedBytes (and StepPerRow/StepPerIter of the matching
	// coefficients) are resident for the whole step regardless of
	// schedule: tensor-array element storage and similar per-step
	// resources. They are included in the totals above.
	StepBytes int64

	// PeakNode/PeakOp/PeakFrame identify the node whose live set attains
	// the (rows=1) maximum; Contributors lists that node's live edges,
	// largest first.
	PeakNode     string
	PeakOp       string
	PeakFrame    string
	Contributors []EdgeMem

	// Nodes is the per-node table in topological order.
	Nodes []NodeMem
}

// NodeMem is one row of the per-node residency table: the bytes that can
// be live at the instant this node executes (step-wide resources included).
type NodeMem struct {
	Node       string
	Op         string
	Frame      string
	Window     int   // iteration-window product of the node's frame chain
	FixedBytes int64 // known live bytes at this node
	PerRow     int64 // plus this per unknown-dim product ("row")
}

// EdgeMem is one live value contributing to a node's residency.
type EdgeMem struct {
	Edge   string // "node:port", or a resource label like "ta/name"
	Op     string
	Bytes  int64 // known bytes (already multiplied by Window)
	PerRow int64 // symbolic per-row bytes (already multiplied by Window)
	Window int
}

// Bound resolves the symbolic factors: rows is the runtime product of the
// unknown dimensions (batch size for a [-1, d] placeholder), iters the
// loop trip count. Either may be 0 when the graph has no such symbol.
func (m *MemEstimate) Bound(rows, iters int64) int64 {
	return m.FixedBytes + rows*m.PerRowBytes + iters*m.PerIterBytes + rows*iters*m.PerRowIterBytes
}

// Finite reports whether the bound is fully static: no symbolic per-row or
// per-iteration component survives shape inference.
func (m *MemEstimate) Finite() bool {
	return m.PerRowBytes == 0 && m.PerIterBytes == 0 && m.PerRowIterBytes == 0
}

func (m *MemEstimate) String() string {
	s := fmt.Sprintf("peak %d B", m.FixedBytes)
	if m.PerRowBytes > 0 {
		s += fmt.Sprintf(" + %d B/row", m.PerRowBytes)
	}
	if m.PerIterBytes > 0 {
		s += fmt.Sprintf(" + %d B/iter", m.PerIterBytes)
	}
	if m.PerRowIterBytes > 0 {
		s += fmt.Sprintf(" + %d B/(row·iter)", m.PerRowIterBytes)
	}
	return s
}

// EstimateMemory runs the structural prelude (structure, topo, frames,
// type inference) and the liveness analysis on one node set. A graph that
// fails structurally (a cycle outside NextIteration) returns a nil
// estimate with the diagnostics; other diagnostics ride along without
// blocking estimation.
func EstimateMemory(g *graph.Graph, opts MemOptions) (*MemEstimate, Diagnostics) {
	nodes := opts.Check.Nodes
	if nodes == nil {
		nodes = g.Nodes()
	}
	c := &checker{g: g, nodes: nodes, opts: opts.Check}
	c.checkStructure()
	order, ok := c.topo()
	if !ok {
		sortDiags(c.diags)
		return nil, c.diags
	}
	c.order = order
	c.assignFrames()
	c.checkFrames()
	c.inferTypes()

	m := &memAnalyzer{c: c, defaultWindow: opts.DefaultWindow}
	if m.defaultWindow <= 0 {
		m.defaultWindow = 32
	}
	est := m.run()
	sortDiags(c.diags)
	return est, c.diags
}

// EstimateMemoryPartitions estimates each partition of a placed graph
// independently (the CheckPartitions shape): the result maps partition
// key (worker name) to its bound. The per-worker bound is what a budgeted
// allocator on that worker would enforce.
func EstimateMemoryPartitions(g *graph.Graph, parts map[string][]*graph.Node, opts MemOptions) map[string]*MemEstimate {
	out := make(map[string]*MemEstimate, len(parts))
	for key, nodes := range parts {
		po := opts
		po.Check.Nodes = nodes
		po.Check.Complete = false
		est, _ := EstimateMemory(g, po)
		out[key] = est
	}
	return out
}

// cost is one value's memory footprint: fixed bytes plus symbolic factors.
type cost struct {
	bytes int64
	rows  bool // multiplied by the unknown-dimension product
	iters bool // multiplied by the loop trip count
}

// memAnalyzer carries the liveness computation for one node set.
type memAnalyzer struct {
	c             *checker
	defaultWindow int

	idx map[int]int // node id -> topo index

	// Extended inference state (memory-only; Check diagnostics are not
	// affected): refined output types, constant scalar ints, constant
	// shape vectors, resource identities, and per-resource element info.
	xt       map[graph.Output]typeInfo
	constInt map[graph.Output]int64
	shapeVal map[graph.Output][]int
	resOf    map[graph.Output]string
	tas      map[string]*taState
	stacks   map[string]*typeInfo // stack id -> joined pushed-value type
	varShape map[string]typeInfo
}

// taState is what inference knows about one TensorArray resource.
type taState struct {
	node  *graph.Node // creating node (for reporting)
	elem  typeInfo    // joined element type
	count int64       // element count; -1 unknown
}

func (m *memAnalyzer) run() *MemEstimate {
	c := m.c
	m.idx = make(map[int]int, len(c.order))
	for i, n := range c.order {
		m.idx[n.ID()] = i
	}
	m.inferExtended()

	// Strict-ancestor bitsets over the topo order, back edges excluded
	// (the same edge relation topoNodes used).
	anc := make([]bitset, len(c.order))
	for i, n := range c.order {
		b := newBitset(len(c.order))
		if !graph.IsBackEdgeOp(n.Op()) {
			for _, in := range n.InputsRef() {
				if j, ok := m.idx[in.Node.ID()]; ok {
					b.set(j)
					b.or(anc[j])
				}
			}
			for _, ctl := range n.ControlInputsRef() {
				if j, ok := m.idx[ctl.ID()]; ok {
					b.set(j)
					b.or(anc[j])
				}
			}
		}
		anc[i] = b
	}

	fetched := map[graph.Output]bool{}
	for _, f := range c.opts.Fetches {
		if f.Node != nil {
			fetched[graph.Output{Node: f.Node, Index: f.Index}] = true
		}
	}

	// Edge list: every produced output with its consumer set.
	type edge struct {
		out       graph.Output
		cost      cost
		window    int64
		producer  int   // topo index
		consumers []int // topo indices, deduped
		fetched   bool
	}
	var edges []edge
	consumersOf := map[graph.Output]map[int]bool{}
	for _, n := range c.order {
		i := m.idx[n.ID()]
		for _, in := range n.InputsRef() {
			if _, ok := m.idx[in.Node.ID()]; !ok {
				continue
			}
			set := consumersOf[in]
			if set == nil {
				set = map[int]bool{}
				consumersOf[in] = set
			}
			set[i] = true
		}
	}
	for _, n := range c.order {
		i := m.idx[n.ID()]
		for port := 0; port < n.NumOutputs(); port++ {
			out := graph.Output{Node: n, Index: port}
			co := m.costOf(out)
			if co.bytes == 0 && !co.rows {
				continue // resources, untracked flow scalars rounded to 0
			}
			var cons []int
			for j := range consumersOf[out] {
				cons = append(cons, j)
			}
			sort.Ints(cons)
			edges = append(edges, edge{
				out: out, cost: co, window: m.windowProd(n),
				producer: i, consumers: cons, fetched: fetched[out],
			})
		}
	}

	// Step-wide resources: tensor-array element storage (count × elem) and
	// stack growth (bytes per push per iteration).
	var stepFixed, stepPerRow, stepPerIter, stepPerRowIter int64
	var stepContribs []EdgeMem
	taIDs := make([]string, 0, len(m.tas))
	for id := range m.tas {
		taIDs = append(taIDs, id)
	}
	sort.Strings(taIDs)
	for _, id := range taIDs {
		ta := m.tas[id]
		ec := m.elemCost(ta.elem)
		em := EdgeMem{Edge: id, Op: "TensorArray", Window: 1}
		switch {
		case ta.count >= 0 && !ec.rows:
			stepFixed += ta.count * ec.bytes
			em.Bytes = ta.count * ec.bytes
		case ta.count >= 0:
			stepPerRow += ta.count * ec.bytes
			em.PerRow = ta.count * ec.bytes
		case !ec.rows:
			stepPerIter += ec.bytes
		default:
			stepPerRowIter += ec.bytes
		}
		if em.Bytes > 0 || em.PerRow > 0 {
			stepContribs = append(stepContribs, em)
		}
	}
	for _, n := range c.order {
		if n.Op() != "StackPush" {
			continue
		}
		vc := m.costOf(graph.Output{Node: n, Index: 0}) // out0 echoes the pushed value
		if vc.rows {
			stepPerRowIter += vc.bytes
		} else {
			stepPerIter += vc.bytes
		}
	}

	// Per-node residency: for each node, sum the edges live at it.
	est := &MemEstimate{
		StepBytes:       stepFixed,
		PerIterBytes:    stepPerIter,
		PerRowIterBytes: stepPerRowIter,
	}
	var peakFixed, peakRow int64
	peakIdx := -1
	est.Nodes = make([]NodeMem, len(c.order))
	for i, n := range c.order {
		var fixed, perRow int64
		for _, e := range edges {
			if !m.liveAt(e.producer, e.consumers, e.fetched, i, anc) {
				continue
			}
			if e.cost.iters {
				continue // accumulated in the step-wide terms
			}
			b := e.cost.bytes * e.window
			if e.cost.rows {
				perRow += b
			} else {
				fixed += b
			}
		}
		fixed += stepFixed
		perRow += stepPerRow
		nm := NodeMem{
			Node: n.Name(), Op: n.Op(), Window: int(m.windowProd(n)),
			FixedBytes: fixed, PerRow: perRow,
		}
		if f := c.frameOf[n.ID()]; f != nil {
			nm.Frame = f.name
		}
		est.Nodes[i] = nm
		if fixed+perRow > peakFixed+peakRow || peakIdx < 0 {
			peakFixed, peakRow, peakIdx = fixed, perRow, i
		}
	}
	// Sound peak: componentwise max (≥ max of any rows-weighted sum).
	for _, nm := range est.Nodes {
		if nm.FixedBytes > est.FixedBytes {
			est.FixedBytes = nm.FixedBytes
		}
		if nm.PerRow > est.PerRowBytes {
			est.PerRowBytes = nm.PerRow
		}
	}
	if peakIdx >= 0 {
		pn := c.order[peakIdx]
		est.PeakNode, est.PeakOp = pn.Name(), pn.Op()
		if f := c.frameOf[pn.ID()]; f != nil {
			est.PeakFrame = f.name
		}
		for _, e := range edges {
			if !m.liveAt(e.producer, e.consumers, e.fetched, peakIdx, anc) || e.cost.iters {
				continue
			}
			em := EdgeMem{
				Edge: e.out.String(), Op: e.out.Node.Op(), Window: int(e.window),
			}
			if e.cost.rows {
				em.PerRow = e.cost.bytes * e.window
			} else {
				em.Bytes = e.cost.bytes * e.window
			}
			est.Contributors = append(est.Contributors, em)
		}
		est.Contributors = append(est.Contributors, stepContribs...)
		sort.SliceStable(est.Contributors, func(a, b int) bool {
			x, y := est.Contributors[a], est.Contributors[b]
			if x.Bytes+x.PerRow != y.Bytes+y.PerRow {
				return x.Bytes+x.PerRow > y.Bytes+y.PerRow
			}
			return x.Edge < y.Edge
		})
	}
	return est
}

// liveAt decides whether the edge produced at topo index p with the given
// consumer indices can be resident while node n executes.
func (m *memAnalyzer) liveAt(p int, consumers []int, fetched bool, n int, anc []bitset) bool {
	if p == n {
		return true // being produced right now
	}
	if anc[p].has(n) {
		return false // producer strictly after n: not yet produced
	}
	if fetched {
		return true // pinned to the end of the step
	}
	if len(consumers) == 0 {
		return false // dropped immediately after production
	}
	for _, ci := range consumers {
		if ci == n || !anc[n].has(ci) {
			return true // some consumer has not provably finished
		}
	}
	return false
}

// windowProd is the product of iteration windows along the node's frame
// chain: how many copies of a per-iteration value can be in flight.
func (m *memAnalyzer) windowProd(n *graph.Node) int64 {
	prod := int64(1)
	f := m.c.frameOf[n.ID()]
	for limit := len(m.c.nodes) + 2; f != nil && limit > 0; limit-- {
		w := 0
		for _, e := range f.enters {
			if p := e.AttrInt("parallel_iterations"); p > w {
				w = p
			}
		}
		if w <= 0 {
			w = m.defaultWindow
		}
		prod *= int64(w)
		f = f.parent
	}
	return prod
}

// elemBytesOf is the storage cost per element for a dtype (unknown dtypes
// assume 8, the widest pooled element).
func elemBytesOf(t typeInfo) int64 {
	if t.dtOK && t.dt == tensor.Bool {
		return 1
	}
	return 8
}

// elemCost turns a typeInfo into a cost: fully known shapes are fixed
// bytes; unknown dims contribute their known-dim product as a per-row
// coefficient; unknown rank costs one element per row.
func (m *memAnalyzer) elemCost(t typeInfo) cost {
	eb := elemBytesOf(t)
	if !t.rankOK {
		return cost{bytes: eb, rows: true}
	}
	prod, rows := int64(1), false
	for _, d := range t.shape {
		if d < 0 {
			rows = true
		} else {
			prod *= int64(d)
		}
	}
	return cost{bytes: prod * eb, rows: rows}
}

// costOf is the footprint of one output port. Resource handles and flow
// tokens cost nothing; everything else costs its (possibly refined) shape.
func (m *memAnalyzer) costOf(out graph.Output) cost {
	if m.resOf[out] != "" {
		return cost{}
	}
	return m.elemCost(m.xt[out])
}

// --- extended, memory-only shape inference -------------------------------

// inferExtended refines c.types with rules the step-blocking verifier does
// not need: variable shapes learned from assignments, tensor-array element
// propagation through resource handles, constant-shape/size propagation,
// and the array ops (Reshape, Pack, Concat, ...). It iterates to a
// practical fixpoint; no diagnostics are emitted.
func (m *memAnalyzer) inferExtended() {
	c := m.c
	m.xt = make(map[graph.Output]typeInfo, len(c.types))
	for k, v := range c.types {
		m.xt[k] = v
	}
	m.constInt = map[graph.Output]int64{}
	m.shapeVal = map[graph.Output][]int{}
	m.resOf = map[graph.Output]string{}
	m.tas = map[string]*taState{}
	m.stacks = map[string]*typeInfo{}
	m.varShape = map[string]typeInfo{}

	// Variable shapes: any shape-preserving write names the var's shape.
	for _, n := range c.order {
		switch n.Op() {
		case "Assign", "AssignAdd", "AssignSub", "ApplyGradientDescent":
			name := n.AttrString("var")
			if name == "" {
				continue
			}
			if t := c.types[inOutput(n, 0)]; t.rankOK {
				if prev, ok := m.varShape[name]; ok {
					if j, okj := join(prev, t); okj {
						m.varShape[name] = j
					}
				} else {
					m.varShape[name] = t
				}
			}
		}
	}

	for round := 0; round < 6; round++ {
		before := len(m.xt) + len(m.constInt) + len(m.shapeVal) + len(m.resOf)
		changed := false
		for _, n := range c.order {
			if m.inferNodeExtended(n) {
				changed = true
			}
		}
		if !changed && len(m.xt)+len(m.constInt)+len(m.shapeVal)+len(m.resOf) == before {
			break
		}
	}
}

func inOutput(n *graph.Node, i int) graph.Output {
	ins := n.InputsRef()
	if i < 0 || i >= len(ins) {
		return graph.Output{}
	}
	return ins[i]
}

// xin is the refined view of data input i.
func (m *memAnalyzer) xin(n *graph.Node, i int) typeInfo {
	return m.xt[inOutput(n, i)]
}

// setX records a refined output type; returns true if it added knowledge.
func (m *memAnalyzer) setX(n *graph.Node, port int, t typeInfo) bool {
	out := graph.Output{Node: n, Index: port}
	old, ok := m.xt[out]
	if ok && old.rankOK == t.rankOK && old.dtOK == t.dtOK && sameShape(old.shape, t.shape) {
		return false
	}
	// Only overwrite when strictly more is known (monotonic refinement).
	if ok && old.rankOK && !t.rankOK {
		return false
	}
	if ok && old.rankOK && t.rankOK && knownDims(old.shape) > knownDims(t.shape) {
		return false
	}
	if ok && old.dtOK && !t.dtOK {
		t.dt, t.dtOK = old.dt, old.dtOK
	}
	m.xt[out] = t
	return true
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func knownDims(s []int) int {
	k := 0
	for _, d := range s {
		if d >= 0 {
			k++
		}
	}
	return k
}

func (m *memAnalyzer) setConst(n *graph.Node, port int, v int64) bool {
	out := graph.Output{Node: n, Index: port}
	if old, ok := m.constInt[out]; ok && old == v {
		return false
	}
	m.constInt[out] = v
	return true
}

func (m *memAnalyzer) setShapeVal(n *graph.Node, port int, s []int) bool {
	out := graph.Output{Node: n, Index: port}
	if old, ok := m.shapeVal[out]; ok && sameShape(old, s) {
		return false
	}
	m.shapeVal[out] = s
	return true
}

func (m *memAnalyzer) setRes(n *graph.Node, port int, id string) bool {
	out := graph.Output{Node: n, Index: port}
	if m.resOf[out] == id {
		return false
	}
	m.resOf[out] = id
	return true
}

// ta returns (creating) the state for a tensor-array resource id.
func (m *memAnalyzer) ta(id string, n *graph.Node) *taState {
	s := m.tas[id]
	if s == nil {
		s = &taState{node: n, count: -1}
		m.tas[id] = s
	}
	return s
}

// joinTAElem merges a written element type into the array's element type.
func (s *taState) joinTAElem(t typeInfo) bool {
	if !t.rankOK {
		return false
	}
	if !s.elem.rankOK {
		s.elem = t
		return true
	}
	if j, ok := join(s.elem, t); ok && !sameShape(j.shape, s.elem.shape) {
		s.elem = j
		return true
	}
	return false
}

var scalarFloat = typeInfo{dt: tensor.Float, dtOK: true, shape: []int{}, rankOK: true}

// inferNodeExtended applies one node's extended rules; reports whether any
// state changed.
func (m *memAnalyzer) inferNodeExtended(n *graph.Node) bool {
	changed := false
	op := n.Op()
	switch op {
	case "Const":
		t, _ := n.Attr("value").(*tensor.Tensor)
		if t == nil {
			break
		}
		if t.DType() == tensor.Int {
			if len(t.ShapeRef()) == 0 && len(t.I) == 1 {
				changed = m.setConst(n, 0, t.I[0]) || changed
			}
			if len(t.ShapeRef()) == 1 {
				s := make([]int, len(t.I))
				for i, v := range t.I {
					s[i] = int(v)
				}
				changed = m.setShapeVal(n, 0, s) || changed
			}
		}
	case "Identity", "StopGradient", "Enter", "Exit", "NextIteration":
		changed = m.passthrough(n, 0, 0) || changed
	case "Merge":
		// A Merge over arms that agree on resource identity or constant
		// propagates it; conservative otherwise.
		changed = m.passthroughJoin(n) || changed
	case "Switch":
		changed = m.passthrough(n, 0, 0) || changed
		changed = m.passthrough(n, 0, 1) || changed
	case "Shape":
		if in := m.xin(n, 0); dimsKnown(in) {
			changed = m.setShapeVal(n, 0, append([]int(nil), in.shape...)) || changed
		}
		// Refine the Shape output itself when only the rank was unknown.
		if in := m.xin(n, 0); in.rankOK {
			changed = m.setX(n, 0, typeInfo{dt: tensor.Int, dtOK: true, shape: []int{len(in.shape)}, rankOK: true}) || changed
		}
	case "Size":
		if in := m.xin(n, 0); dimsKnown(in) {
			total := int64(1)
			for _, d := range in.shape {
				total *= int64(d)
			}
			changed = m.setConst(n, 0, total) || changed
		}
	case "Reshape":
		changed = m.inferReshape(n) || changed
	case "Fill":
		if s, ok := m.shapeVal[inOutput(n, 0)]; ok {
			t := typeInfo{shape: append([]int(nil), s...), rankOK: true}
			if v := m.xin(n, 1); v.dtOK {
				t.dt, t.dtOK = v.dt, true
			}
			changed = m.setX(n, 0, t) || changed
		}
	case "BroadcastTo", "UnbroadcastTo":
		if s, ok := m.shapeVal[inOutput(n, 1)]; ok {
			t := typeInfo{shape: append([]int(nil), s...), rankOK: true}
			if v := m.xin(n, 0); v.dtOK {
				t.dt, t.dtOK = v.dt, true
			}
			changed = m.setX(n, 0, t) || changed
		}
	case "Pack":
		ins := n.InputsRef()
		if len(ins) == 0 {
			break
		}
		elem := m.xt[ins[0]]
		okAll := elem.rankOK
		for i := 1; i < len(ins) && okAll; i++ {
			next := m.xt[ins[i]]
			if !next.rankOK {
				okAll = false
				break
			}
			if j, ok := join(elem, next); ok {
				elem = j
			} else {
				okAll = false
			}
		}
		if okAll {
			t := typeInfo{dt: elem.dt, dtOK: elem.dtOK, rankOK: true,
				shape: append([]int{len(ins)}, elem.shape...)}
			changed = m.setX(n, 0, t) || changed
		}
	case "Unpack":
		in := m.xin(n, 0)
		if in.rankOK && len(in.shape) >= 1 {
			t := typeInfo{dt: in.dt, dtOK: in.dtOK, rankOK: true,
				shape: append([]int(nil), in.shape[1:]...)}
			for port := 0; port < n.NumOutputs(); port++ {
				changed = m.setX(n, port, t) || changed
			}
		}
	case "Split":
		in := m.xin(n, 0)
		num, axis := n.AttrInt("num"), n.AttrInt("axis")
		if in.rankOK && num > 0 && axis >= 0 && axis < len(in.shape) {
			s := append([]int(nil), in.shape...)
			if s[axis] >= 0 && s[axis]%num == 0 {
				s[axis] /= num
			} else {
				s[axis] = -1
			}
			t := typeInfo{dt: in.dt, dtOK: in.dtOK, shape: s, rankOK: true}
			for port := 0; port < n.NumOutputs(); port++ {
				changed = m.setX(n, port, t) || changed
			}
		}
	case "Concat":
		changed = m.inferConcat(n) || changed
	case "Gather":
		x, ix := m.xin(n, 0), m.xin(n, 1)
		if x.rankOK && len(x.shape) >= 1 && ix.rankOK {
			s := append(append([]int(nil), ix.shape...), x.shape[1:]...)
			changed = m.setX(n, 0, typeInfo{dt: x.dt, dtOK: x.dtOK, shape: s, rankOK: true}) || changed
		}
	case "SliceRows":
		x := m.xin(n, 0)
		if x.rankOK && len(x.shape) >= 1 {
			s := append([]int{n.AttrInt("size")}, x.shape[1:]...)
			changed = m.setX(n, 0, typeInfo{dt: x.dt, dtOK: x.dtOK, shape: s, rankOK: true}) || changed
		}
	case "ExpandDims":
		x := m.xin(n, 0)
		axis := n.AttrInt("axis")
		if x.rankOK {
			if axis < 0 {
				axis += len(x.shape) + 1
			}
			if axis >= 0 && axis <= len(x.shape) {
				s := append([]int(nil), x.shape[:axis]...)
				s = append(s, 1)
				s = append(s, x.shape[axis:]...)
				changed = m.setX(n, 0, typeInfo{dt: x.dt, dtOK: x.dtOK, shape: s, rankOK: true}) || changed
			}
		}
	case "OneHot":
		ix := m.xin(n, 0)
		if ix.rankOK {
			s := append(append([]int(nil), ix.shape...), n.AttrInt("depth"))
			changed = m.setX(n, 0, typeInfo{dt: tensor.Float, dtOK: true, shape: s, rankOK: true}) || changed
		}
	case "SumGrad":
		// SumGrad(g, shape): broadcast g back to the pre-reduction shape.
		if s, ok := m.shapeVal[inOutput(n, 1)]; ok {
			t := typeInfo{shape: append([]int(nil), s...), rankOK: true}
			if g := m.xin(n, 0); g.dtOK {
				t.dt, t.dtOK = g.dt, true
			}
			changed = m.setX(n, 0, t) || changed
		}
	case "GatherGrad":
		// GatherGrad(ix, g, shape): scatter into a zero tensor of shape.
		if s, ok := m.shapeVal[inOutput(n, 2)]; ok {
			t := typeInfo{shape: append([]int(nil), s...), rankOK: true}
			if g := m.xin(n, 1); g.dtOK {
				t.dt, t.dtOK = g.dt, true
			}
			changed = m.setX(n, 0, t) || changed
		}
	case "SliceAxisGrad", "SliceRowsGrad", "TileGrad":
		// Zeros shaped like x (input 1) with the gradient slab filled in.
		changed = m.passthrough(n, 1, 0) || changed
	case "ShapeDim":
		changed = m.setX(n, 0, scalarOf(tensor.Int)) || changed
		if x := m.xin(n, 0); x.rankOK {
			a := n.AttrInt("axis")
			if a < 0 {
				a += len(x.shape)
			}
			if a >= 0 && a < len(x.shape) && x.shape[a] >= 0 {
				changed = m.setConst(n, 0, int64(x.shape[a])) || changed
			}
		}
	case "SliceAxis":
		// SliceAxis(x, begin, size) attr axis: extent known only when the
		// size operand is a propagated constant.
		x := m.xin(n, 0)
		axis := n.AttrInt("axis")
		if x.rankOK {
			if axis < 0 {
				axis += len(x.shape)
			}
			if axis >= 0 && axis < len(x.shape) {
				s := append([]int(nil), x.shape...)
				if v, ok := m.constInt[inOutput(n, 2)]; ok {
					s[axis] = int(v)
				} else {
					s[axis] = -1
				}
				changed = m.setX(n, 0, typeInfo{dt: x.dt, dtOK: x.dtOK, shape: s, rankOK: true}) || changed
			}
		}
	case "VarRead":
		if t, ok := m.varShape[n.AttrString("var")]; ok {
			changed = m.setX(n, 0, t) || changed
		}
	case "Assign", "AssignAdd", "AssignSub", "ApplyGradientDescent":
		// All echo the variable's (post-write) value.
		if t, ok := m.varShape[n.AttrString("var")]; ok {
			changed = m.setX(n, 0, t) || changed
		} else {
			changed = m.passthrough(n, 0, 0) || changed
		}
	case "TensorArray":
		id := "ta/" + n.Name()
		ta := m.ta(id, n)
		changed = m.setRes(n, 0, id) || changed
		changed = m.setX(n, 1, scalarFloat) || changed
		if v, ok := m.constInt[inOutput(n, 0)]; ok && v > 0 && ta.count < 0 {
			ta.count = v
			changed = true
		}
	case "TensorArrayGrad":
		if fwd := m.resOf[inOutput(n, 0)]; fwd != "" {
			id := fwd + "@grad/" + n.AttrString("source")
			g := m.ta(id, n)
			if f := m.tas[fwd]; f != nil {
				if f.count >= 0 && g.count < 0 {
					g.count = f.count
					changed = true
				}
				changed = g.joinTAElem(f.elem) || changed
			}
			changed = m.setRes(n, 0, id) || changed
		}
		changed = m.setX(n, 1, scalarFloat) || changed
	case "TensorArrayWrite":
		if id := m.resOf[inOutput(n, 0)]; id != "" {
			ta := m.ta(id, n)
			changed = ta.joinTAElem(m.xin(n, 2)) || changed
		}
		changed = m.setX(n, 0, scalarFloat) || changed
	case "TensorArrayUnstack":
		if id := m.resOf[inOutput(n, 0)]; id != "" {
			ta := m.ta(id, n)
			v := m.xin(n, 1)
			if v.rankOK && len(v.shape) >= 1 {
				if v.shape[0] >= 0 && ta.count < 0 {
					ta.count = int64(v.shape[0])
					changed = true
				}
				changed = ta.joinTAElem(typeInfo{dt: v.dt, dtOK: v.dtOK, rankOK: true,
					shape: append([]int(nil), v.shape[1:]...)}) || changed
			}
		}
		changed = m.setX(n, 0, scalarFloat) || changed
	case "TensorArrayRead":
		if id := m.resOf[inOutput(n, 0)]; id != "" {
			if ta := m.tas[id]; ta != nil && ta.elem.rankOK {
				changed = m.setX(n, 0, ta.elem) || changed
			}
		}
	case "TensorArrayStack":
		if id := m.resOf[inOutput(n, 0)]; id != "" {
			if ta := m.tas[id]; ta != nil && ta.elem.rankOK {
				count := -1
				if ta.count >= 0 {
					count = int(ta.count)
				}
				t := typeInfo{dt: ta.elem.dt, dtOK: ta.elem.dtOK, rankOK: true,
					shape: append([]int{count}, ta.elem.shape...)}
				changed = m.setX(n, 0, t) || changed
			}
		}
	case "TensorArraySize":
		if id := m.resOf[inOutput(n, 0)]; id != "" {
			if ta := m.tas[id]; ta != nil && ta.count >= 0 {
				changed = m.setConst(n, 0, ta.count) || changed
			}
		}
		changed = m.setX(n, 0, scalarOf(tensor.Int)) || changed
	case "Stack":
		changed = m.setRes(n, 0, "stack/"+n.Name()) || changed
	case "StackPush":
		changed = m.passthrough(n, 1, 0) || changed
		changed = m.setX(n, 1, scalarOf(tensor.Int)) || changed
		if id := m.resOf[inOutput(n, 0)]; id != "" {
			v := m.xin(n, 1)
			if v.rankOK {
				if prev := m.stacks[id]; prev == nil {
					cp := v
					m.stacks[id] = &cp
					changed = true
				} else if j, ok := join(*prev, v); ok && !sameShape(j.shape, prev.shape) {
					*prev = j
					changed = true
				}
			}
		}
	case "StackPop":
		if id := m.resOf[inOutput(n, 0)]; id != "" {
			if t := m.stacks[id]; t != nil {
				changed = m.setX(n, 0, *t) || changed
			}
		}
		changed = m.setX(n, 1, scalarOf(tensor.Int)) || changed
	default:
		// Re-run the standard rule with refined inputs, quietly: swap the
		// refined map in, infer, swap back. The standard rules are pure
		// functions of the input types, so this is a plain fixpoint step.
		changed = m.reinferStandard(n) || changed
	}
	// Propagate constants and shape vectors through value-preserving ops.
	switch op {
	case "Identity", "StopGradient", "Enter", "Exit", "NextIteration":
		changed = m.propagateVals(n, 0, 0) || changed
	case "Switch":
		changed = m.propagateVals(n, 0, 0) || changed
		changed = m.propagateVals(n, 0, 1) || changed
	}
	return changed
}

// passthrough copies the refined type of input i to output port.
func (m *memAnalyzer) passthrough(n *graph.Node, i, port int) bool {
	t := m.xin(n, i)
	if !t.rankOK && !t.dtOK {
		return false
	}
	return m.setX(n, port, t)
}

// propagateVals forwards constInt/shapeVal/resOf from input i to output
// port for ops that forward their value unchanged.
func (m *memAnalyzer) propagateVals(n *graph.Node, i, port int) bool {
	in := inOutput(n, i)
	changed := false
	if v, ok := m.constInt[in]; ok {
		changed = m.setConst(n, port, v) || changed
	}
	if s, ok := m.shapeVal[in]; ok {
		changed = m.setShapeVal(n, port, s) || changed
	}
	if id := m.resOf[in]; id != "" {
		changed = m.setRes(n, port, id) || changed
	}
	return changed
}

// passthroughJoin handles Merge: arms that agree propagate their resource
// identity (a loop-carried tensor-array handle) and joined type.
func (m *memAnalyzer) passthroughJoin(n *graph.Node) bool {
	ins := n.InputsRef()
	if len(ins) == 0 {
		return false
	}
	changed := false
	id := m.resOf[ins[0]]
	agree := id != ""
	for _, in := range ins[1:] {
		other := m.resOf[in]
		// A not-yet-resolved arm (back edge on the first rounds) does not
		// veto; a resolved, different resource does.
		if other != "" && other != id {
			agree = false
		}
	}
	if agree {
		changed = m.setRes(n, 0, id) || changed
	}
	acc := m.xt[ins[0]]
	okAll := acc.rankOK
	for _, in := range ins[1:] {
		next := m.xt[in]
		if !next.rankOK {
			continue // back edge not resolved yet; join what we have
		}
		if j, ok := join(acc, next); ok {
			acc = j
		} else {
			okAll = false
		}
	}
	if okAll && acc.rankOK {
		changed = m.setX(n, 0, acc) || changed
	}
	return changed
}

// inferReshape resolves the static or constant-propagated target shape,
// filling a single -1 from the input's total size when known.
func (m *memAnalyzer) inferReshape(n *graph.Node) bool {
	var target []int
	if s, ok := n.Attr("shape").([]int); ok && len(n.InputsRef()) == 1 {
		target = append([]int(nil), s...)
	} else if s, ok := m.shapeVal[inOutput(n, 1)]; ok {
		target = append([]int(nil), s...)
	} else {
		return false
	}
	in := m.xin(n, 0)
	wild := -1
	for i, d := range target {
		if d < 0 {
			if wild >= 0 {
				return false // two unknowns: unresolvable
			}
			wild = i
		}
	}
	if wild >= 0 && dimsKnown(in) {
		total, rest := 1, 1
		for _, d := range in.shape {
			total *= d
		}
		for i, d := range target {
			if i != wild {
				rest *= d
			}
		}
		if rest > 0 && total%rest == 0 {
			target[wild] = total / rest
		}
	}
	t := typeInfo{shape: target, rankOK: true}
	if in.dtOK {
		t.dt, t.dtOK = in.dt, true
	}
	return m.setX(n, 0, t)
}

// inferConcat sums the concat axis over known input shapes.
func (m *memAnalyzer) inferConcat(n *graph.Node) bool {
	ins := n.InputsRef()
	if len(ins) == 0 {
		return false
	}
	axis := n.AttrInt("axis")
	first := m.xt[ins[0]]
	if !first.rankOK || axis < 0 || axis >= len(first.shape) {
		return false
	}
	out := append([]int(nil), first.shape...)
	sum := first.shape[axis]
	for _, in := range ins[1:] {
		t := m.xt[in]
		if !t.rankOK || len(t.shape) != len(out) {
			return false
		}
		for i, d := range t.shape {
			if i == axis {
				if sum >= 0 && d >= 0 {
					sum += d
				} else {
					sum = -1
				}
				continue
			}
			if out[i] != d {
				out[i] = -1
			}
		}
	}
	out[axis] = sum
	ti := typeInfo{shape: out, rankOK: true, dt: first.dt, dtOK: first.dtOK}
	return m.setX(n, 0, ti)
}

// reinferStandard runs the verifier's standard per-op rule against the
// refined type map (diagnostics are discarded — the blocking Check run
// already reported them against the unrefined types).
func (m *memAnalyzer) reinferStandard(n *graph.Node) bool {
	c := m.c
	olds := make([]typeInfo, n.NumOutputs())
	for port := range olds {
		olds[port] = m.xt[graph.Output{Node: n, Index: port}]
	}
	savedTypes, savedDiags := c.types, c.diags
	c.types = m.xt
	c.inferNode(n)
	c.types, c.diags = savedTypes, savedDiags
	for port := range olds {
		nt := m.xt[graph.Output{Node: n, Index: port}]
		if nt.rankOK != olds[port].rankOK || nt.dtOK != olds[port].dtOK || !sameShape(nt.shape, olds[port].shape) {
			return true
		}
	}
	return false
}

// --- small dense bitset ---------------------------------------------------

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) or(o bitset) {
	for i := range o {
		b[i] |= o[i]
	}
}
