// Send/Recv communication checks. Partitioning rewrites every cross-device
// edge into a Send/Recv pair sharing a rendezvous key; a key with no peer
// blocks its Recv forever, a duplicated key races two producers into one
// slot, and a cycle in the cross-partition dependency relation (that does
// not pass through NextIteration) deadlocks the rendezvous — each partition
// waits on a Recv whose Send is downstream of its own unsent value.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/graph"
)

// checkSendRecv validates rendezvous key pairing over the checked node set.
// In Complete mode every key must have exactly one Send and one Recv; in
// partial mode (one worker's slice) only collisions are detectable — the
// peers live on other workers.
func (c *checker) checkSendRecv() {
	sends := map[string][]*graph.Node{}
	recvs := map[string][]*graph.Node{}
	for _, n := range c.nodes {
		switch n.Op() {
		case "Send", "Recv":
			key := n.AttrString(exec.SendKeyAttr)
			if key == "" {
				c.addf(n, -1, "sendrecv-no-key", "%s has no rendezvous key attribute", n.Op())
				continue
			}
			if n.Op() == "Send" {
				sends[key] = append(sends[key], n)
			} else {
				recvs[key] = append(recvs[key], n)
			}
		}
	}
	if len(sends) == 0 && len(recvs) == 0 {
		return
	}
	keys := map[string]bool{}
	for k := range sends {
		keys[k] = true
	}
	for k := range recvs {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		s, r := sends[k], recvs[k]
		if len(s) > 1 {
			c.addf(s[1], -1, "sendrecv-dup", "rendezvous key %q has %d Sends (first: %q); keys must be unique", k, len(s), s[0].Name())
		}
		if len(r) > 1 {
			c.addf(r[1], -1, "sendrecv-dup", "rendezvous key %q has %d Recvs (first: %q); keys must be unique", k, len(r), r[0].Name())
		}
		if !c.opts.Complete {
			continue
		}
		if len(s) == 0 {
			c.addf(r[0], -1, "recv-unpaired", "rendezvous key %q has a Recv but no Send; the Recv would block forever", k)
		}
		if len(r) == 0 {
			c.addf(s[0], -1, "send-unpaired", "rendezvous key %q has a Send but no Recv; the value would never be consumed", k)
		}
	}
	if c.opts.Complete {
		c.checkRendezvousCycles(sends, recvs)
	}
}

// checkRendezvousCycles links each Recv to its Send and re-runs the
// topological sort: any cycle that appears only once communication edges
// are added is a cross-partition deadlock — no executor alone ever stalls,
// but the set of partitions waits on itself through the rendezvous.
func (c *checker) checkRendezvousCycles(sends, recvs map[string][]*graph.Node) {
	extra := map[int][]*graph.Node{} // recv node id -> its send producers
	for k, rs := range recvs {
		ss := sends[k]
		if len(ss) == 0 {
			continue
		}
		for _, r := range rs {
			extra[r.ID()] = append(extra[r.ID()], ss[0])
		}
	}
	if len(extra) == 0 {
		return
	}
	_, stuck := topoNodes(c.nodes, extra)
	for _, n := range stuck {
		// Report only the communication endpoints on the cycle; the
		// intermediate compute nodes would drown the signal.
		if n.Op() == "Send" || n.Op() == "Recv" {
			dev := n.Device()
			where := ""
			if dev != "" {
				where = fmt.Sprintf(" (device %q)", dev)
			}
			c.addf(n, -1, "rendezvous-cycle",
				"on a cross-partition cycle%s: the rendezvous would deadlock waiting on its own downstream value", where)
		}
	}
}

// CheckPartitions verifies a partitioned program as a whole: every
// partition's slice individually (partial mode), then Send/Recv pairing and
// rendezvous-cycle analysis over the union (complete mode). The parts map
// is keyed by device, as produced by partition.Partition.
func CheckPartitions(g *graph.Graph, parts map[string][]*graph.Node) Diagnostics {
	var all []*graph.Node
	devs := make([]string, 0, len(parts))
	for dev := range parts {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		all = append(all, parts[dev]...)
	}
	return Check(g, Options{Nodes: all, Complete: true})
}
