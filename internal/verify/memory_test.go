package verify_test

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/verify"
)

func estimate(t *testing.T, g *graph.Graph, opts verify.MemOptions) *verify.MemEstimate {
	t.Helper()
	est, ds := verify.EstimateMemory(g, opts)
	if est == nil {
		t.Fatalf("no estimate: %v", ds.Err())
	}
	return est
}

// A straight chain: [4,4] const -> Square -> Sum. The peak is at Square,
// where both the const's output (being consumed) and Square's own output
// (being produced) are resident: 2 x 128 B.
func TestEstimateMemoryLinearChain(t *testing.T) {
	b := newGB(t)
	c := b.constF("c", make([]float64, 16), 4, 4)
	sq := b.node("Square", "sq", 1, nil, c.Out(0))
	b.node("Sum", "sum", 1, nil, sq.Out(0))

	est := estimate(t, b.g, verify.MemOptions{})
	if est.FixedBytes != 256 {
		t.Fatalf("peak = %d, want 256 (%+v)", est.FixedBytes, est.Nodes)
	}
	if !est.Finite() {
		t.Fatalf("fully static chain should be finite: %s", est)
	}
	if est.PeakOp != "Square" {
		t.Fatalf("peak at %s (%s), want the Square node", est.PeakNode, est.PeakOp)
	}
}

// Fetching an early output pins it to the end of the step: the const's
// 128 B must stay resident at Sum, raising Sum's residency.
func TestEstimateMemoryFetchPinned(t *testing.T) {
	b := newGB(t)
	c := b.constF("c", make([]float64, 16), 4, 4)
	sq := b.node("Square", "sq", 1, nil, c.Out(0))
	sum := b.node("Sum", "sum", 1, nil, sq.Out(0))

	base := estimate(t, b.g, verify.MemOptions{})
	pinned := estimate(t, b.g, verify.MemOptions{
		Check: verify.Options{Fetches: []graph.Output{c.Out(0), sum.Out(0)}},
	})
	if pinned.FixedBytes <= base.FixedBytes {
		t.Fatalf("fetch-pinned peak %d should exceed base peak %d", pinned.FixedBytes, base.FixedBytes)
	}
}

// An unknown (batch) dimension becomes a symbolic per-row coefficient:
// Placeholder [-1,4] -> Square has 32 B/row live for each of the two
// values at the peak, and Bound resolves rows.
func TestEstimateMemoryPerRow(t *testing.T) {
	b := newGB(t)
	ph := b.node("Placeholder", "x", 1, map[string]any{
		"dtype": int(tensor.Float), "shape": []int{-1, 4},
	})
	b.node("Square", "sq", 1, nil, ph.Out(0))

	est := estimate(t, b.g, verify.MemOptions{})
	if est.Finite() {
		t.Fatalf("unknown dim must yield a symbolic bound: %s", est)
	}
	if est.PerRowBytes != 64 {
		t.Fatalf("per-row = %d, want 64 (%s)", est.PerRowBytes, est)
	}
	if got := est.Bound(10, 0); got != est.FixedBytes+640 {
		t.Fatalf("Bound(10,0) = %d, want fixed+640", got)
	}
}

// buildLoop wires the canonical while-loop skeleton around a scalar float:
// Enter -> Merge -> [pred] -> Switch -> (NextIteration | Exit).
func buildLoop(t *testing.T, parallel int) *graph.Graph {
	b := newGB(t)
	init := b.constF("init", []float64{0})
	attrs := map[string]any{"frame_name": "f"}
	if parallel > 0 {
		attrs["parallel_iterations"] = parallel
	}
	enter := b.node("Enter", "enter", 1, attrs, init.Out(0))
	merge := b.node("Merge", "merge", 1, nil, enter.Out(0), enter.Out(0))
	limit := b.constF("limit", []float64{8})
	pred := b.node("Less", "pred", 1, nil, merge.Out(0), limit.Out(0))
	lc := b.node("LoopCond", "lc", 1, nil, pred.Out(0))
	sw := b.node("Switch", "sw", 2, nil, merge.Out(0), lc.Out(0))
	one := b.constF("one", []float64{1})
	add := b.node("Add", "add", 1, nil, sw.Out(1), one.Out(0))
	ni := b.node("NextIteration", "ni", 1, nil, add.Out(0))
	merge.ReplaceInput(1, ni.Out(0))
	b.node("Exit", "exit", 1, nil, sw.Out(0))
	return b.g
}

// The frame's iteration window multiplies in-frame residency: the same
// loop with parallel_iterations=4 must bound strictly higher than with a
// window of 1, and the Enter's attribute must override the default.
func TestEstimateMemoryLoopWindow(t *testing.T) {
	serial := estimate(t, buildLoop(t, 0), verify.MemOptions{DefaultWindow: 1})
	wide := estimate(t, buildLoop(t, 4), verify.MemOptions{DefaultWindow: 1})
	if wide.FixedBytes <= serial.FixedBytes {
		t.Fatalf("window-4 peak %d should exceed window-1 peak %d", wide.FixedBytes, serial.FixedBytes)
	}
	var window int
	for _, nm := range wide.Nodes {
		if nm.Op == "Merge" {
			window = nm.Window
		}
	}
	if window != 4 {
		t.Fatalf("in-frame window = %d, want 4 from parallel_iterations", window)
	}
}

// Tensor-array element storage is step-resident: size 4 of [2,2] float
// elements is 4*4*8 = 128 B on top of every node's transient residency.
func TestEstimateMemoryTensorArray(t *testing.T) {
	b := newGB(t)
	size := b.constI("size", 4)
	ta := b.node("TensorArray", "ta", 2, nil, size.Out(0))
	ix := b.constI("ix", 0)
	val := b.constF("val", make([]float64, 4), 2, 2)
	b.node("TensorArrayWrite", "w", 1, nil, ta.Out(0), ix.Out(0), val.Out(0), ta.Out(1))

	est := estimate(t, b.g, verify.MemOptions{})
	if est.StepBytes != 128 {
		t.Fatalf("step-resident = %d, want 128 (%s)", est.StepBytes, est)
	}
}

// Partition estimation bounds each worker's slice independently.
func TestEstimateMemoryPartitions(t *testing.T) {
	b := newGB(t)
	bigC := b.constF("big", make([]float64, 64), 8, 8)
	bigSq := b.node("Square", "bigsq", 1, nil, bigC.Out(0))
	smallC := b.constF("small", make([]float64, 4), 2, 2)
	smallSq := b.node("Square", "smallsq", 1, nil, smallC.Out(0))

	parts := map[string][]*graph.Node{
		"w1": {bigC, bigSq},
		"w2": {smallC, smallSq},
	}
	ests := verify.EstimateMemoryPartitions(b.g, parts, verify.MemOptions{})
	if ests["w1"] == nil || ests["w2"] == nil {
		t.Fatalf("missing partition estimate: %v", ests)
	}
	if ests["w1"].FixedBytes != 1024 || ests["w2"].FixedBytes != 64 {
		t.Fatalf("partition peaks = %d/%d, want 1024/64",
			ests["w1"].FixedBytes, ests["w2"].FixedBytes)
	}
}

// Diagnostics come back sorted by (node, port, code) regardless of the
// order the passes discovered them — pinned so CI failures diff cleanly.
func TestDiagnosticsDeterministicOrder(t *testing.T) {
	b := newGB(t)
	// Two unknown ops with names in reverse discovery order, plus an
	// arity violation, produce diagnostics from different passes.
	zzz := b.node("NoSuchOpZ", "zzz", 1, nil)
	b.node("NoSuchOpA", "aaa", 1, nil)
	b.node("Add", "add", 1, nil, zzz.Out(0)) // input-arity: Add wants 2

	ds := verify.Check(b.g, verify.Options{})
	if len(ds) < 3 {
		t.Fatalf("want >= 3 diagnostics, got %v", ds)
	}
	if !sort.SliceIsSorted(ds, func(i, j int) bool {
		a, c := ds[i], ds[j]
		if a.Node != c.Node {
			return a.Node < c.Node
		}
		if a.Port != c.Port {
			return a.Port < c.Port
		}
		return a.Code <= c.Code
	}) {
		t.Fatalf("diagnostics not sorted by (node, port, code): %v", ds)
	}
	if ds[0].Node != "aaa" {
		t.Fatalf("first diagnostic is %q, want node aaa", ds[0].Node)
	}
}
