// Dtype inference and shape propagation. Types flow forward along data
// edges in topological order; NextIteration back edges contribute nothing
// (their producer may come later in the order), so loop-carried values
// simply stay partially known — the analysis is conservative and only
// reports definite conflicts, never "unknown".
//
// A shape is []int with -1 for an unknown dimension; a nil shape with
// rankOK=false means even the rank is unknown.
package verify

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// typeInfo is what the verifier knows about one output port.
type typeInfo struct {
	dt     tensor.DType
	dtOK   bool
	shape  []int
	rankOK bool
}

func known(t *tensor.Tensor) typeInfo {
	return typeInfo{dt: t.DType(), dtOK: true, shape: t.Shape(), rankOK: true}
}

func scalarOf(dt tensor.DType) typeInfo {
	return typeInfo{dt: dt, dtOK: true, shape: []int{}, rankOK: true}
}

// join merges two flows into one port (Merge, AddN, Select arms): dtypes
// must agree where both are known; dims degrade to -1 where they differ.
func join(a, b typeInfo) (typeInfo, bool) {
	out := typeInfo{}
	switch {
	case a.dtOK && b.dtOK:
		if a.dt != b.dt {
			return out, false
		}
		out.dt, out.dtOK = a.dt, true
	case a.dtOK:
		out.dt, out.dtOK = a.dt, true
	case b.dtOK:
		out.dt, out.dtOK = b.dt, true
	}
	if a.rankOK && b.rankOK && len(a.shape) == len(b.shape) {
		out.rankOK = true
		out.shape = make([]int, len(a.shape))
		for i := range a.shape {
			if a.shape[i] == b.shape[i] {
				out.shape[i] = a.shape[i]
			} else {
				out.shape[i] = -1
			}
		}
	}
	return out, true
}

func dimsKnown(t typeInfo) bool {
	if !t.rankOK {
		return false
	}
	for _, d := range t.shape {
		if d < 0 {
			return false
		}
	}
	return true
}

// knownNonUnit reports a shape that is fully known and provably not a
// single element. The executor accepts any one-element tensor wherever a
// "scalar" predicate is required (Switch, LoopCond), so shape [1] must
// pass; only a definite multi-element shape is an error.
func knownNonUnit(t typeInfo) bool {
	if !dimsKnown(t) {
		return false
	}
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n != 1
}

// numeric ops reject Bool and Str operands at runtime; catching the dtype
// here turns a step failure into a construction-time diagnostic.
func numericOK(dt tensor.DType) bool { return dt == tensor.Float || dt == tensor.Int }

var binaryArith = map[string]bool{
	"Add": true, "Sub": true, "Mul": true, "Div": true, "Pow": true,
	"Maximum": true, "Minimum": true, "Mod": true,
}

var comparisons = map[string]bool{
	"Greater": true, "GreaterEqual": true, "Less": true, "LessEqual": true,
	"Equal": true, "NotEqual": true,
}

var unaryArith = map[string]bool{
	"Neg": true, "Abs": true, "Exp": true, "Log": true, "Sqrt": true,
	"Square": true, "Sigmoid": true, "Tanh": true, "Relu": true, "Sign": true,
	"Softmax": true, "LogSoftmax": true,
}

// inferTypes walks the topological order propagating dtypes and shapes and
// recording port-typing diagnostics (Switch/LoopCond predicates, arithmetic
// operand mismatches, MatMul inner dimensions, reduction axes).
func (c *checker) inferTypes() {
	c.types = make(map[graph.Output]typeInfo, len(c.order))
	for _, n := range c.order {
		c.inferNode(n)
	}
}

// in returns what is known about data input i (zero value = unknown).
func (c *checker) in(n *graph.Node, i int) typeInfo {
	ins := n.InputsRef()
	if i < 0 || i >= len(ins) {
		return typeInfo{}
	}
	return c.types[ins[i]]
}

// inName names data input i for diagnostics, tolerating arity violations
// that were already diagnosed by checkStructure.
func inName(n *graph.Node, i int) string {
	ins := n.InputsRef()
	if i < 0 || i >= len(ins) {
		return fmt.Sprintf("<missing input %d>", i)
	}
	return ins[i].String()
}

func (c *checker) set(n *graph.Node, port int, t typeInfo) {
	c.types[graph.Output{Node: n, Index: port}] = t
}

// broadcastResult applies NumPy-style broadcasting when both operand shapes
// are fully known, diagnosing impossible combinations.
func (c *checker) broadcastResult(n *graph.Node, a, b typeInfo) typeInfo {
	if !dimsKnown(a) || !dimsKnown(b) {
		return typeInfo{}
	}
	shape, err := tensor.BroadcastShapes(a.shape, b.shape)
	if err != nil {
		c.addf(n, 1, "shape-mismatch", "operand shapes %v and %v do not broadcast", a.shape, b.shape)
		return typeInfo{}
	}
	return typeInfo{shape: shape, rankOK: true}
}

func (c *checker) inferNode(n *graph.Node) {
	op := n.Op()
	switch {
	case op == "Const":
		if t, ok := n.Attr("value").(*tensor.Tensor); ok && t != nil {
			c.set(n, 0, known(t))
		} else {
			c.addf(n, -1, "const-no-value", "Const has no tensor value attribute")
		}
	case op == "Placeholder":
		ti := typeInfo{}
		if dv, ok := n.Attr("dtype").(int); ok {
			ti.dt, ti.dtOK = tensor.DType(dv), true
		}
		if sv, ok := n.Attr("shape").([]int); ok {
			ti.shape, ti.rankOK = sv, true
		}
		c.set(n, 0, ti)
	case op == "Identity" || op == "StopGradient" || op == "Enter" || op == "Exit" || op == "NextIteration":
		c.set(n, 0, c.in(n, 0))
	case op == "Merge" || op == "AddN":
		ins := n.InputsRef()
		if len(ins) == 0 {
			return
		}
		acc := c.types[ins[0]]
		for i := 1; i < len(ins); i++ {
			next := c.types[ins[i]]
			j, ok := join(acc, next)
			if !ok {
				c.addf(n, i, "dtype-mismatch", "input %s is %s but earlier inputs are %s",
					ins[i], next.dt, acc.dt)
				return
			}
			acc = j
		}
		c.set(n, 0, acc)
	case op == "Switch":
		data, pred := c.in(n, 0), c.in(n, 1)
		if pred.dtOK && pred.dt != tensor.Bool {
			c.addf(n, 1, "switch-pred-dtype", "predicate %s is %s; Switch requires a bool", inName(n, 1), pred.dt)
		}
		if knownNonUnit(pred) {
			c.addf(n, 1, "switch-pred-shape", "predicate %s has shape %v; Switch requires a single-element bool", inName(n, 1), pred.shape)
		}
		c.set(n, 0, data)
		c.set(n, 1, data)
	case op == "LoopCond":
		in := c.in(n, 0)
		if in.dtOK && in.dt != tensor.Bool {
			c.addf(n, 0, "loopcond-dtype", "input is %s; LoopCond requires a bool", in.dt)
		}
		if knownNonUnit(in) {
			c.addf(n, 0, "loopcond-shape", "input has shape %v; LoopCond requires a single-element bool", in.shape)
		}
		c.set(n, 0, scalarOf(tensor.Bool))
	case binaryArith[op]:
		a, b := c.in(n, 0), c.in(n, 1)
		for i, t := range []typeInfo{a, b} {
			if t.dtOK && !numericOK(t.dt) {
				c.addf(n, i, "arith-dtype", "operand %s is %s; %s requires a numeric operand", inName(n, i), t.dt, op)
			}
		}
		if a.dtOK && b.dtOK && a.dt != b.dt {
			c.addf(n, 1, "dtype-mismatch", "operands are %s and %s; %s requires matching dtypes", a.dt, b.dt, op)
		}
		out := c.broadcastResult(n, a, b)
		if a.dtOK && numericOK(a.dt) {
			out.dt, out.dtOK = a.dt, true
		} else if b.dtOK && numericOK(b.dt) {
			out.dt, out.dtOK = b.dt, true
		}
		c.set(n, 0, out)
	case comparisons[op]:
		a, b := c.in(n, 0), c.in(n, 1)
		if a.dtOK && b.dtOK && a.dt != b.dt {
			c.addf(n, 1, "dtype-mismatch", "operands are %s and %s; %s requires matching dtypes", a.dt, b.dt, op)
		}
		out := c.broadcastResult(n, a, b)
		out.dt, out.dtOK = tensor.Bool, true
		c.set(n, 0, out)
	case op == "LogicalAnd" || op == "LogicalOr":
		a, b := c.in(n, 0), c.in(n, 1)
		for i, t := range []typeInfo{a, b} {
			if t.dtOK && t.dt != tensor.Bool {
				c.addf(n, i, "logical-dtype", "operand %s is %s; %s requires bool", inName(n, i), t.dt, op)
			}
		}
		out := c.broadcastResult(n, a, b)
		out.dt, out.dtOK = tensor.Bool, true
		c.set(n, 0, out)
	case op == "LogicalNot":
		in := c.in(n, 0)
		if in.dtOK && in.dt != tensor.Bool {
			c.addf(n, 0, "logical-dtype", "operand is %s; LogicalNot requires bool", in.dt)
		}
		in.dt, in.dtOK = tensor.Bool, true
		c.set(n, 0, in)
	case unaryArith[op]:
		in := c.in(n, 0)
		if in.dtOK && !numericOK(in.dt) {
			c.addf(n, 0, "arith-dtype", "operand is %s; %s requires a numeric operand", in.dt, op)
		}
		c.set(n, 0, in)
	case op == "ZerosLike" || op == "OnesLike":
		c.set(n, 0, c.in(n, 0))
	case op == "MatMul":
		a, b := c.in(n, 0), c.in(n, 1)
		if a.dtOK && b.dtOK && a.dt != b.dt {
			c.addf(n, 1, "dtype-mismatch", "operands are %s and %s; MatMul requires matching dtypes", a.dt, b.dt)
		}
		out := typeInfo{}
		if a.dtOK {
			out.dt, out.dtOK = a.dt, true
		} else if b.dtOK {
			out.dt, out.dtOK = b.dt, true
		}
		if a.rankOK && len(a.shape) != 2 {
			c.addf(n, 0, "matmul-rank", "operand %s has rank %d; MatMul requires matrices", inName(n, 0), len(a.shape))
		}
		if b.rankOK && len(b.shape) != 2 {
			c.addf(n, 1, "matmul-rank", "operand %s has rank %d; MatMul requires matrices", inName(n, 1), len(b.shape))
		}
		if a.rankOK && b.rankOK && len(a.shape) == 2 && len(b.shape) == 2 {
			if a.shape[1] >= 0 && b.shape[0] >= 0 && a.shape[1] != b.shape[0] {
				c.addf(n, 1, "matmul-inner", "inner dimensions disagree: %v x %v", a.shape, b.shape)
			}
			out.shape, out.rankOK = []int{a.shape[0], b.shape[1]}, true
		}
		c.set(n, 0, out)
	case op == "Select":
		pred, x, y := c.in(n, 0), c.in(n, 1), c.in(n, 2)
		if pred.dtOK && pred.dt != tensor.Bool {
			c.addf(n, 0, "select-pred-dtype", "condition is %s; Select requires bool", pred.dt)
		}
		out, ok := join(x, y)
		if !ok {
			c.addf(n, 2, "dtype-mismatch", "branches are %s and %s; Select requires matching dtypes", x.dt, y.dt)
			out = typeInfo{}
		}
		c.set(n, 0, out)
	case op == "Sum" || op == "Mean" || op == "Max" || op == "Min":
		in := c.in(n, 0)
		axes, _ := n.Attr("axes").([]int)
		keep := n.AttrBool("keep_dims")
		out := typeInfo{dt: in.dt, dtOK: in.dtOK}
		if op == "Mean" {
			out.dtOK = false // integer means promote; leave unknown
		}
		if in.rankOK {
			rank := len(in.shape)
			reduce := make([]bool, rank)
			if len(axes) == 0 {
				for i := range reduce {
					reduce[i] = true
				}
			}
			bad := false
			for _, ax := range axes {
				if ax < 0 {
					ax += rank
				}
				if ax < 0 || ax >= rank {
					c.addf(n, 0, "reduce-axis", "axis %v out of range for rank-%d input", n.Attr("axes"), rank)
					bad = true
					break
				}
				reduce[ax] = true
			}
			if !bad {
				var shape []int
				for i, d := range in.shape {
					if reduce[i] {
						if keep {
							shape = append(shape, 1)
						}
					} else {
						shape = append(shape, d)
					}
				}
				if shape == nil {
					shape = []int{}
				}
				out.shape, out.rankOK = shape, true
			}
		}
		c.set(n, 0, out)
	case op == "ArgMax":
		in := c.in(n, 0)
		out := typeInfo{dt: tensor.Int, dtOK: true}
		if in.rankOK {
			axis := n.AttrInt("axis")
			rank := len(in.shape)
			if axis < 0 {
				axis += rank
			}
			if axis < 0 || axis >= rank {
				c.addf(n, 0, "reduce-axis", "axis %d out of range for rank-%d input", n.AttrInt("axis"), rank)
			} else {
				shape := append([]int(nil), in.shape[:axis]...)
				shape = append(shape, in.shape[axis+1:]...)
				out.shape, out.rankOK = shape, true
			}
		}
		c.set(n, 0, out)
	case op == "Transpose":
		in := c.in(n, 0)
		perm, _ := n.Attr("perm").([]int)
		out := typeInfo{dt: in.dt, dtOK: in.dtOK}
		if in.rankOK && len(perm) > 0 {
			if len(perm) != len(in.shape) {
				c.addf(n, 0, "transpose-perm", "perm %v does not match rank-%d input", perm, len(in.shape))
			} else {
				shape := make([]int, len(perm))
				valid := true
				for i, p := range perm {
					if p < 0 || p >= len(in.shape) {
						c.addf(n, 0, "transpose-perm", "perm %v indexes outside rank-%d input", perm, len(in.shape))
						valid = false
						break
					}
					shape[i] = in.shape[p]
				}
				if valid {
					out.shape, out.rankOK = shape, true
				}
			}
		}
		c.set(n, 0, out)
	case op == "Cast":
		in := c.in(n, 0)
		out := typeInfo{shape: in.shape, rankOK: in.rankOK}
		switch to := n.Attr("to").(type) {
		case tensor.DType:
			out.dt, out.dtOK = to, true
		case int:
			out.dt, out.dtOK = tensor.DType(to), true
		}
		c.set(n, 0, out)
	case op == "Shape":
		in := c.in(n, 0)
		out := typeInfo{dt: tensor.Int, dtOK: true}
		if in.rankOK {
			out.shape, out.rankOK = []int{len(in.shape)}, true
		}
		c.set(n, 0, out)
	case op == "Size" || op == "Rank":
		c.set(n, 0, scalarOf(tensor.Int))
	case op == "RandomUniform" || op == "RandomNormal":
		out := typeInfo{dt: tensor.Float, dtOK: true}
		if sv, ok := n.Attr("shape").([]int); ok {
			out.shape, out.rankOK = sv, true
		}
		c.set(n, 0, out)
	default:
		// Unknown to the type system: every output stays unknown, which
		// propagates as "no opinion" rather than a false conflict.
	}
}

// typeString renders a typeInfo for diagnostics/tests.
func (t typeInfo) String() string {
	dt := "?"
	if t.dtOK {
		dt = t.dt.String()
	}
	if !t.rankOK {
		return dt + "[?]"
	}
	return fmt.Sprintf("%s%v", dt, t.shape)
}
