package verify_test

import (
	"testing"

	"repro/dcf"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/verify"
)

// These tests pin the other half of the verifier's contract: every graph
// the builders actually produce — straight-line, while-loop, gradient,
// optimized, partitioned — must verify clean. A verifier that rejects
// valid programs is worse than none.

func mustClean(t *testing.T, g *graph.Graph, opts verify.Options) {
	t.Helper()
	if ds := verify.Check(g, opts); len(ds) != 0 {
		t.Fatalf("well-formed graph rejected:\n%v", ds.Error())
	}
}

func TestAcceptsStraightLineGraph(t *testing.T) {
	g := dcf.NewGraph()
	x := g.PlaceholderTyped("x", dcf.Float, 2, 3)
	w := g.Variable("w", dcf.Zeros(3, 4))
	y := x.MatMul(w).Relu()
	loss := y.Square().ReduceMean(nil, false)
	grads := g.MustGradients(loss, w)
	mustClean(t, g.Builder().G, verify.Options{
		Complete: true,
		Fetches:  []graph.Output{loss.Output(), grads[0].Output()},
		Feeds:    []string{"x"},
	})
}

func TestAcceptsWhileLoopWithGradients(t *testing.T) {
	g := dcf.NewGraph()
	x := g.Placeholder("x")
	outs := g.While(
		[]dcf.Tensor{x, g.Scalar(0)},
		func(v []dcf.Tensor) dcf.Tensor { return v[1].Less(g.Scalar(5)) },
		func(v []dcf.Tensor) []dcf.Tensor {
			return []dcf.Tensor{v[0].Mul(g.Scalar(2)), v[1].Add(g.Scalar(1))}
		},
		dcf.WhileOpts{},
	)
	// Gradient of a while loop exercises Stack/StackPush/StackPop and a
	// second (backward) loop frame.
	grads := g.MustGradients(outs[0], x)
	mustClean(t, g.Builder().G, verify.Options{
		Complete: true,
		Fetches:  []graph.Output{outs[0].Output(), grads[0].Output()},
		Feeds:    []string{"x"},
	})
}

func TestAcceptsOptimizedGraph(t *testing.T) {
	g := dcf.NewGraph()
	x := g.PlaceholderTyped("x", dcf.Float, 4)
	y := x.Mul(g.Scalar(2)).Add(g.Scalar(1)).Relu()
	z := x.Mul(g.Scalar(2)).Add(g.Scalar(1)).Relu() // CSE fodder
	out := y.Add(z).ReduceSum()
	if _, err := g.OptimizeOpts(dcf.OptimizeOptions{Fuse: true}); err != nil {
		t.Fatal(err)
	}
	mustClean(t, g.Builder().G, verify.Options{
		Complete: true,
		Fetches:  []graph.Output{out.Output()},
		Feeds:    []string{"x"},
	})
}

func TestAcceptsPartitionedWhileLoop(t *testing.T) {
	b := core.NewBuilder()
	var outs []graph.Output
	b.WithDevice("cpu:0", func() {
		outs = b.While(
			[]graph.Output{b.Scalar(0)},
			func(v []graph.Output) graph.Output { return b.Less(v[0], b.Scalar(3)) },
			func(v []graph.Output) []graph.Output {
				var r graph.Output
				b.WithDevice("cpu:1", func() { r = b.Add(v[0], b.Scalar(1)) })
				return []graph.Output{r}
			},
			core.WhileOpts{},
		)
	})
	_ = outs
	res, err := partition.Partition(b.G, b.G.Nodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The partitioned program as a whole — including the synthesized
	// control loop on cpu:1 — must verify clean: keys pair up, frames
	// nest, no rendezvous cycle.
	if ds := verify.CheckPartitions(b.G, res.Parts); len(ds) != 0 {
		t.Fatalf("partitioned graph rejected:\n%v", ds.Error())
	}
	// Each partition alone must also pass in partial mode.
	for dev, nodes := range res.Parts {
		if ds := verify.Check(b.G, verify.Options{Nodes: nodes}); len(ds) != 0 {
			t.Fatalf("partition %s rejected:\n%v", dev, ds.Error())
		}
	}
}
