// Package verify statically checks dataflow graphs before they reach an
// executor. The dynamic control-flow primitives (Switch, Merge, Enter, Exit,
// NextIteration) and the partition-time communication ops (Send, Recv) have
// strict well-formedness rules; a graph that violates them does not fail
// cleanly at step time — it hangs an executor, deadlocks a rendezvous, or
// fetches the wrong value. This package finds those violations at graph
// construction, registration, and optimization boundaries and reports them
// as collected diagnostics (never first-error-only), each naming the node,
// op, port, and frame involved.
//
// The checks, in the order they run:
//
//   - structure: ops exist in the registry, input/output arities match,
//     input ports are valid, every cycle passes through NextIteration
//   - frames: Enter nodes carry a frame name, frame nesting forms a tree,
//     NextIteration back edges stay within their frame, Exit leaves one,
//     and (whole programs only) every frame has a firable Exit
//   - liveness: a can-fire fixpoint over the dataflow relation finds Merge
//     inputs that can never produce a token and fetches/targets that can
//     never complete
//   - types: dtype inference and shape propagation along edges, with
//     -1/unknown joins; only definite conflicts are reported (see infer.go)
//   - run signature: fetches/feeds/targets must reference existing nodes,
//     valid ports, and (feeds) Placeholder ops
//   - communication: Send/Recv rendezvous keys pair exactly once in a
//     complete program, never collide in a partial one, and the
//     cross-partition dependency relation is acyclic (see sendrecv.go)
//
// See README.md in this directory for how the boundaries use it.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ops"
)

// Diagnostic is one verification finding. Port is the input port the finding
// refers to (-1 when the finding is about the node as a whole); Frame is the
// control-flow frame the node lives in ("" for the root frame).
type Diagnostic struct {
	Node  string
	Op    string
	Port  int
	Frame string
	Code  string
	Msg   string
}

// Error formats the diagnostic with every locating detail present.
func (d Diagnostic) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify[%s]: node %q (%s", d.Code, d.Node, d.Op)
	if d.Frame != "" {
		fmt.Fprintf(&sb, ", frame %q", d.Frame)
	}
	if d.Port >= 0 {
		fmt.Fprintf(&sb, ", port %d", d.Port)
	}
	sb.WriteString("): ")
	sb.WriteString(d.Msg)
	return sb.String()
}

// Diagnostics is the collected findings of one Check run. It implements
// error so boundaries can return it directly.
type Diagnostics []Diagnostic

// Error joins the findings, one per line, capping very long lists.
func (ds Diagnostics) Error() string {
	const max = 20
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph verification failed (%d finding(s)):", len(ds))
	for i, d := range ds {
		if i == max {
			fmt.Fprintf(&sb, "\n  ... and %d more", len(ds)-max)
			break
		}
		sb.WriteString("\n  ")
		sb.WriteString(d.Error())
	}
	return sb.String()
}

// Err returns the diagnostics as an error, or nil when there are none
// (a typed nil Diagnostics inside an error interface would read as non-nil).
func (ds Diagnostics) Err() error {
	if len(ds) == 0 {
		return nil
	}
	return ds
}

// Options configures one Check run.
type Options struct {
	// Nodes restricts checking to a subset of the graph (a pruned run
	// subgraph, or one worker's partition slice). nil checks every node.
	// The subset must be closed under data and control edges.
	Nodes []*graph.Node

	// Fetches, Targets, and Feeds are the run signature to validate against
	// the graph (all optional).
	Fetches []graph.Output
	Targets []*graph.Node
	Feeds   []string

	// Complete marks the node set as a whole program: every frame must
	// have a firable Exit and every Send/Recv key must pair within the
	// set. A single worker's slice of a partitioned program sets it false
	// — its frames may be headless control loops (no Exit) and its
	// Send/Recv peers live on other workers.
	Complete bool
}

// Check runs every verification pass and returns the collected diagnostics
// (empty when the graph is well-formed). Use Diagnostics.Err to convert the
// result to an error.
func Check(g *graph.Graph, opts Options) Diagnostics {
	nodes := opts.Nodes
	if nodes == nil {
		nodes = g.Nodes()
	}
	c := &checker{g: g, nodes: nodes, opts: opts}
	c.checkStructure()
	order, ok := c.topo()
	if !ok {
		// Everything below needs a topological order; the cycle diagnostic
		// has already been recorded.
		c.checkSignature()
		return c.diags
	}
	c.order = order
	c.assignFrames()
	c.checkFrames()
	c.checkLiveness()
	c.inferTypes()
	c.checkSignature()
	c.checkSendRecv()
	sortDiags(c.diags)
	return c.diags
}

// sortDiags pins the diagnostic order to (node, port, code, message) so
// repeated runs — and CI failure diffs — are stable regardless of pass
// order or map iteration. The sort is stable, so diagnostics that tie on
// every key keep their discovery order.
func sortDiags(ds Diagnostics) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// checker carries the state of one Check run.
type checker struct {
	g     *graph.Graph
	nodes []*graph.Node
	opts  Options
	diags Diagnostics

	// order is a topological order of nodes with NextIteration inputs
	// treated as back edges.
	order []*graph.Node
	// inSet maps node id -> membership in the checked set.
	inSet map[int]bool
	// frames maps node id -> frame (nil = root).
	frameOf map[int]*frameInfo
	byName  map[string]*frameInfo
	// fire maps node id -> "can ever produce a token" (see checkLiveness).
	fire map[int]bool
	// types maps output ports to inferred dtype/shape (see infer.go).
	types map[graph.Output]typeInfo
}

// frameInfo is one control-flow frame discovered from Enter structure.
type frameInfo struct {
	name   string
	parent *frameInfo // nil = root
	enters []*graph.Node
	exits  []*graph.Node
}

func (c *checker) addf(n *graph.Node, port int, code, format string, args ...any) {
	frame := ""
	if n != nil {
		if f := c.frameOf[n.ID()]; f != nil {
			frame = f.name
		}
	}
	d := Diagnostic{Port: port, Frame: frame, Code: code, Msg: fmt.Sprintf(format, args...)}
	if n != nil {
		d.Node, d.Op = n.Name(), n.Op()
	}
	c.diags = append(c.diags, d)
}

// opArity lists the data-input arity of ops the verifier knows exactly
// ({min, max}; max -1 = unbounded). Ops not listed are not arity-checked.
var opArity = map[string][2]int{
	"Switch": {2, 2}, "Merge": {1, -1}, "Enter": {1, 1}, "Exit": {1, 1},
	"NextIteration": {1, 1}, "LoopCond": {1, 1}, "Send": {1, 1}, "Recv": {0, 0},
	"Const": {0, 0}, "Placeholder": {0, 0}, "NoOp": {0, 0},
	"Identity": {1, 1}, "StopGradient": {1, 1},
	"Add": {2, 2}, "Sub": {2, 2}, "Mul": {2, 2}, "Div": {2, 2}, "Pow": {2, 2},
	"Maximum": {2, 2}, "Minimum": {2, 2}, "Mod": {2, 2}, "MatMul": {2, 2},
	"Greater": {2, 2}, "GreaterEqual": {2, 2}, "Less": {2, 2}, "LessEqual": {2, 2},
	"Equal": {2, 2}, "NotEqual": {2, 2}, "LogicalAnd": {2, 2}, "LogicalOr": {2, 2},
	"Neg": {1, 1}, "Abs": {1, 1}, "Exp": {1, 1}, "Log": {1, 1}, "Sqrt": {1, 1},
	"Square": {1, 1}, "Sigmoid": {1, 1}, "Tanh": {1, 1}, "Relu": {1, 1},
	"Sign": {1, 1}, "LogicalNot": {1, 1}, "Softmax": {1, 1}, "LogSoftmax": {1, 1},
	"ZerosLike": {1, 1}, "OnesLike": {1, 1},
	"AddN": {1, -1}, "Select": {3, 3},
	"Sum": {1, 1}, "Mean": {1, 1}, "Max": {1, 1}, "Min": {1, 1},
	"ArgMax": {1, 1}, "Transpose": {1, 1}, "Cast": {1, 1},
	"Shape": {1, 1}, "Size": {1, 1}, "Rank": {1, 1},
}

// checkStructure verifies registry membership, arities, and port validity.
func (c *checker) checkStructure() {
	c.inSet = make(map[int]bool, len(c.nodes))
	for _, n := range c.nodes {
		c.inSet[n.ID()] = true
	}
	for _, n := range c.nodes {
		def, err := ops.Get(n.Op())
		if err != nil {
			c.addf(n, -1, "unknown-op", "op %q is not registered", n.Op())
		} else if def.VariableOutputs == nil && def.NumOutputs != n.NumOutputs() {
			c.addf(n, -1, "output-arity", "node declares %d outputs but op %q has %d",
				n.NumOutputs(), n.Op(), def.NumOutputs)
		}
		if a, ok := opArity[n.Op()]; ok {
			if got := n.NumInputs(); got < a[0] || (a[1] >= 0 && got > a[1]) {
				want := fmt.Sprintf("%d", a[0])
				if a[1] < 0 {
					want = fmt.Sprintf(">= %d", a[0])
				} else if a[1] != a[0] {
					want = fmt.Sprintf("%d..%d", a[0], a[1])
				}
				c.addf(n, -1, "input-arity", "op %q takes %s data input(s), got %d", n.Op(), want, got)
			}
		}
		for i, in := range n.InputsRef() {
			if !in.Valid() {
				c.addf(n, i, "invalid-port", "input references invalid port %v", in)
				continue
			}
			if !c.inSet[in.Node.ID()] {
				c.addf(n, i, "edge-escape", "input %s is outside the checked node set", in)
			}
		}
		for i, ctl := range n.ControlInputsRef() {
			if !c.inSet[ctl.ID()] {
				c.addf(n, -1, "edge-escape", "control input %d (%s) is outside the checked node set", i, ctl.Name())
			}
		}
	}
}

// topo orders the checked nodes topologically, treating NextIteration data
// inputs as back edges; a remaining cycle is structurally invalid (only
// while-loops may create cycles, and only through NextIteration).
func (c *checker) topo() ([]*graph.Node, bool) {
	order, stuck := topoNodes(c.nodes, nil)
	if len(stuck) > 0 {
		for _, n := range stuck {
			c.addf(n, -1, "cycle", "node is on a cycle that does not pass through NextIteration")
		}
		return nil, false
	}
	return order, true
}

// topoNodes is the shared Kahn's-algorithm core: it orders the closed node
// set treating NextIteration inputs as back edges, with extra (from, to)
// edges injected (the cross-partition checker links Send->Recv). It returns
// the order and the nodes left on cycles.
func topoNodes(nodes []*graph.Node, extra map[int][]*graph.Node) (order, stuck []*graph.Node) {
	pos := make(map[int]int, len(nodes))
	for i, n := range nodes {
		pos[n.ID()] = i
	}
	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	addEdge := func(srcID int, dst int, seen map[int]bool) {
		j, ok := pos[srcID]
		if !ok || seen[j] {
			return // escaping edges were already diagnosed
		}
		seen[j] = true
		indeg[dst]++
		succ[j] = append(succ[j], dst)
	}
	for i, n := range nodes {
		seen := map[int]bool{}
		if !graph.IsBackEdgeOp(n.Op()) {
			for _, in := range n.InputsRef() {
				addEdge(in.Node.ID(), i, seen)
			}
			for _, ctl := range n.ControlInputsRef() {
				addEdge(ctl.ID(), i, seen)
			}
		}
		for _, src := range extra[n.ID()] {
			addEdge(src.ID(), i, seen)
		}
	}
	var ready []int
	for i := range nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, nodes[i])
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(nodes) {
		for i, n := range nodes {
			if indeg[i] > 0 {
				stuck = append(stuck, n)
			}
		}
		return order, stuck
	}
	return order, nil
}

// assignFrames derives each node's control-flow frame from Enter/Exit
// structure: Enter moves into the frame named by its attribute, Exit moves
// back to the parent, NextIteration adopts the frame of its consuming Merge,
// and every other node lives in the deepest frame among its inputs (root
// inputs mix freely — loop-invariant captures are legal).
func (c *checker) assignFrames() {
	c.frameOf = make(map[int]*frameInfo, len(c.nodes))
	c.byName = map[string]*frameInfo{}
	depth := func(f *frameInfo) int {
		d := 0
		// Cap the walk: a malformed graph can wire frames into a parent
		// cycle, which is diagnosed elsewhere but must not hang us here.
		for limit := len(c.nodes) + 2; f != nil && limit > 0; limit-- {
			d++
			f = f.parent
		}
		return d
	}
	for _, n := range c.order {
		switch n.Op() {
		case "Enter":
			name := n.AttrString("frame_name")
			if name == "" {
				c.addf(n, -1, "enter-no-frame", "Enter has no frame_name attribute")
				continue
			}
			var parent *frameInfo
			if len(n.InputsRef()) > 0 {
				parent = c.frameOf[n.InputsRef()[0].Node.ID()]
			}
			f, ok := c.byName[name]
			if !ok {
				f = &frameInfo{name: name, parent: parent}
				c.byName[name] = f
			} else if f.parent != parent {
				// Partition control loops legitimately re-enter an existing
				// frame from the root (their Enter feeds off a local
				// constant), so a root/non-root disagreement resolves to
				// the deeper parent; two distinct non-root parents mean the
				// nesting is genuinely not a tree.
				switch {
				case parent == nil:
					// keep the established (deeper) parent
				case f.parent == nil:
					f.parent = parent
				default:
					c.addf(n, 0, "frame-nesting", "frame %q entered from frame %q but previously from frame %q: frame nesting must form a tree",
						name, parent.name, f.parent.name)
				}
			}
			f.enters = append(f.enters, n)
			c.frameOf[n.ID()] = f
		case "Exit":
			in := n.InputsRef()
			if len(in) == 0 {
				continue // arity diagnostic already recorded
			}
			f := c.frameOf[in[0].Node.ID()]
			if f == nil {
				c.addf(n, 0, "exit-outside-frame", "Exit input %s is in the root frame; Exit must leave a loop frame", in[0])
				continue
			}
			f.exits = append(f.exits, n)
			c.frameOf[n.ID()] = f.parent
		case "NextIteration":
			// Assigned from its consuming Merge in checkFrames (its input
			// is a back edge, so it may precede the producer here).
		default:
			var best *frameInfo
			conflict := false
			consider := func(f *frameInfo) {
				if f == nil {
					return
				}
				if best == nil {
					best = f
					return
				}
				if best == f {
					return
				}
				// Keep the deeper frame; two unrelated frames are a conflict.
				db, df := depth(best), depth(f)
				if df > db {
					best = f
				} else if df == db {
					conflict = true
				}
			}
			for _, in := range n.InputsRef() {
				consider(c.frameOf[in.Node.ID()])
			}
			for _, ctl := range n.ControlInputsRef() {
				consider(c.frameOf[ctl.ID()])
			}
			if conflict {
				c.addf(n, -1, "frame-mix", "inputs come from sibling frames; values may only cross frames through Enter/Exit")
			}
			if best != nil {
				c.frameOf[n.ID()] = best
			}
		}
	}
}

// checkFrames validates the per-frame rules that depend on the completed
// frame assignment.
func (c *checker) checkFrames() {
	// NextIteration adopts the frame of its consuming Merges, which must
	// agree; the back edge must not escape its frame.
	consumers := map[int][]*graph.Node{} // producer id -> consuming nodes
	for _, n := range c.nodes {
		for _, in := range n.InputsRef() {
			consumers[in.Node.ID()] = append(consumers[in.Node.ID()], n)
		}
	}
	for _, n := range c.nodes {
		if n.Op() != "NextIteration" {
			continue
		}
		var frame *frameInfo
		for _, consumer := range consumers[n.ID()] {
			if consumer.Op() != "Merge" {
				c.addf(n, -1, "ni-consumer", "NextIteration output feeds %q (%s); only Merge may consume a back edge",
					consumer.Name(), consumer.Op())
				continue
			}
			f := c.frameOf[consumer.ID()]
			if frame == nil {
				frame = f
			} else if f != nil && f != frame {
				c.addf(n, -1, "ni-frame", "NextIteration feeds Merges in different frames (%q and %q)",
					frame.name, f.name)
			}
		}
		if frame == nil {
			continue // dangling NextIteration surfaces through liveness
		}
		c.frameOf[n.ID()] = frame
		if in := n.InputsRef(); len(in) > 0 {
			if inf := c.frameOf[in[0].Node.ID()]; inf != frame {
				from := "the root frame"
				if inf != nil {
					from = fmt.Sprintf("frame %q", inf.name)
				}
				c.addf(n, 0, "ni-frame-escape", "back edge from %s crosses out of frame %q; NextIteration must stay within its frame",
					from, frame.name)
			}
		}
	}
	// A complete program's frames must each have an Exit: a loop no value
	// ever leaves can still run, but nothing downstream can observe it and
	// the executor can never retire it cleanly. Partial node sets skip this
	// — partition control loops are headless by construction.
	if c.opts.Complete {
		for _, f := range c.byName {
			if len(f.exits) == 0 {
				c.addf(f.enters[0], -1, "frame-no-exit", "frame %q has %d Enter(s) but no reachable Exit", f.name, len(f.enters))
			}
		}
	}
}

// checkLiveness runs the can-fire fixpoint: a node can fire if its inputs
// can ever deliver tokens (Merge needs any one data input; NextIteration
// propagates within the loop; Recv tokens arrive from outside the analyzed
// set). A Merge input that can never fire means the graph wired a dead
// branch into a loop; a fetch that cannot fire hangs its step forever.
func (c *checker) checkLiveness() {
	c.fire = make(map[int]bool, len(c.nodes))
	for changed := true; changed; {
		changed = false
		for _, n := range c.order {
			if c.fire[n.ID()] {
				continue
			}
			ok := true
			for _, ctl := range n.ControlInputsRef() {
				if !c.fire[ctl.ID()] {
					ok = false
					break
				}
			}
			if ok {
				switch n.Op() {
				case "Merge":
					any := false
					for _, in := range n.InputsRef() {
						if c.fire[in.Node.ID()] {
							any = true
							break
						}
					}
					ok = any
				case "Recv":
					// Tokens arrive through the rendezvous; pairing is
					// checked separately.
				default:
					for _, in := range n.InputsRef() {
						if !c.fire[in.Node.ID()] {
							ok = false
							break
						}
					}
				}
			}
			if ok {
				c.fire[n.ID()] = true
				changed = true
			}
		}
	}
	for _, n := range c.nodes {
		if n.Op() != "Merge" {
			continue
		}
		for i, in := range n.InputsRef() {
			if !c.fire[in.Node.ID()] {
				c.addf(n, i, "merge-dead-input", "input %s can never produce a token", in)
			}
		}
	}
}

// checkSignature validates the run signature (fetches, targets, feeds)
// against the graph.
func (c *checker) checkSignature() {
	for i, f := range c.opts.Fetches {
		if f.Node == nil {
			c.diags = append(c.diags, Diagnostic{Port: i, Code: "fetch-nil",
				Msg: fmt.Sprintf("fetch %d references no node", i)})
			continue
		}
		if f.Node.Graph() != c.g {
			c.addf(f.Node, -1, "fetch-foreign", "fetch %d belongs to a different graph", i)
			continue
		}
		if !f.Valid() {
			c.addf(f.Node, f.Index, "fetch-invalid-port", "fetch %d references output %d of an op with %d output(s)",
				i, f.Index, f.Node.NumOutputs())
			continue
		}
		if c.fire != nil && c.inSet[f.Node.ID()] && !c.fire[f.Node.ID()] {
			c.addf(f.Node, f.Index, "fetch-dead", "fetch %d can never produce a value; the step would hang", i)
		}
	}
	for i, t := range c.opts.Targets {
		if t == nil {
			c.diags = append(c.diags, Diagnostic{Port: i, Code: "target-nil",
				Msg: fmt.Sprintf("target %d references no node", i)})
			continue
		}
		if t.Graph() != c.g {
			c.addf(t, -1, "target-foreign", "target %d belongs to a different graph", i)
			continue
		}
		if c.fire != nil && c.inSet[t.ID()] && !c.fire[t.ID()] {
			c.addf(t, -1, "target-dead", "target %d can never execute; the step would hang", i)
		}
	}
	for _, name := range c.opts.Feeds {
		n := c.g.ByName(name)
		if n == nil {
			c.diags = append(c.diags, Diagnostic{Node: name, Port: -1, Code: "feed-missing",
				Msg: fmt.Sprintf("feed %q does not name a node in the graph", name)})
			continue
		}
		if n.Op() != "Placeholder" {
			c.addf(n, -1, "feed-not-placeholder", "feed %q is a %s node; only Placeholder may be fed", name, n.Op())
		}
	}
}
