// Per-function effect summaries: which mutexes a function acquires
// (directly and through calls), which channels it closes, sends on and
// receives from, and which functions it spawns with `go`. Summaries are
// the vocabulary of the concurrency analyzers (lockorder, goroleak,
// unsafesend); they are computed once per Program build with a worklist
// fixpoint for the transitive lock set.
//
// Effect keys are strings, for the same reason callgraph identities are:
// type identity does not hold across independently typechecked units.
//
//	mutex/channel field     "<pkgpath>.<Type>.<field>"
//	package-level var       "<pkgpath>.<name>"
//	embedded sync.Mutex     "<pkgpath>.<Type>.#embedded"
//	local var (incl. captured by closures)  "<pkgpath>.<name>@<def offset>"
//
// The local-var key is derived from the *definition* position of the
// types.Var, so a closure that closes a channel captured from its
// enclosing function and the enclosing function's own sends agree on the
// key.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Summary is one function's direct and transitive effects.
type Summary struct {
	// Acquires are the function's own Lock/RLock sites in source order.
	Acquires []LockAcq
	// Trans is the set of lock keys a call to this function may acquire,
	// including through callees; `go`-spawned functions are excluded
	// because their acquisitions happen on another goroutine.
	Trans map[string]bool
	// Calls are the resolved non-spawn callees (deduped, order of first
	// appearance).
	Calls []*Function
	// Spawns are the functions launched by `go` statements in this body.
	Spawns []Spawn
	// Closes / Sends / Recvs are channel effects with resolved keys;
	// operations whose channel cannot be keyed are dropped.
	Closes []ChanOp
	Sends  []ChanOp
	Recvs  []ChanOp
}

// LockAcq is one direct mutex acquisition.
type LockAcq struct {
	Key  string
	Read bool // RLock / TryRLock
	Pos  token.Pos
}

// Spawn is one `go` statement with a resolved callee.
type Spawn struct {
	Callee *Function
	Pos    token.Pos
}

// ChanOp is one channel effect (close, send or receive) with its key.
type ChanOp struct {
	Key string
	Pos token.Pos
}

// buildSummaries fills fn.Summary for every Program function and runs the
// transitive-lock fixpoint.
func buildSummaries(prog *Program) {
	for _, fn := range prog.Order {
		fn.Summary = collectSummary(prog, fn)
	}
	// Fixpoint: Trans(f) ⊇ direct(f) ∪ ⋃ Trans(g) over called g. The
	// callgraph is small (one module); a simple global iteration converges
	// in callgraph-depth rounds.
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Order {
			s := fn.Summary
			for _, callee := range s.Calls {
				for k := range callee.Summary.Trans {
					if !s.Trans[k] {
						s.Trans[k] = true
						changed = true
					}
				}
			}
		}
	}
	// Channel-effect indexes. Closes exclude test-file functions (a
	// test's teardown close must not flag production sends); recvs keep
	// everything because they only ever weaken findings.
	for _, fn := range prog.Order {
		for _, c := range fn.Summary.Closes {
			if !fn.testFile {
				prog.closes[c.Key] = append(prog.closes[c.Key], fn)
			}
		}
		for _, r := range fn.Summary.Recvs {
			prog.recvs[r.Key] = append(prog.recvs[r.Key], fn)
		}
	}
}

// inspectOwn walks the function's own body in source order without
// descending into nested function literals — those are Program functions
// of their own.
func inspectOwn(fn *Function, visit func(ast.Node) bool) {
	body := fn.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// goCallsOf returns the set of call expressions that ARE the spawned call
// of a `go` statement in fn's own body (their effects belong to the new
// goroutine, not this one; their arguments still evaluate here).
func goCallsOf(fn *Function) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	inspectOwn(fn, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out[g.Call] = true
		}
		return true
	})
	return out
}

func collectSummary(prog *Program, fn *Function) *Summary {
	s := &Summary{Trans: map[string]bool{}}
	pkg := fn.Pkg
	goCalls := goCallsOf(fn)
	calledKeys := map[string]bool{}
	inspectOwn(fn, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			for _, callee := range prog.Callees(pkg, e.Call) {
				s.Spawns = append(s.Spawns, Spawn{Callee: callee, Pos: e.Pos()})
			}
		case *ast.CallExpr:
			if key, acq, ok := lockCall(pkg, e); ok {
				if acq.acquire {
					s.Acquires = append(s.Acquires, LockAcq{Key: key, Read: acq.read, Pos: e.Pos()})
					s.Trans[key] = true
				}
				return true
			}
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) == 1 {
					if key := chanKey(pkg, e.Args[0]); key != "" {
						s.Closes = append(s.Closes, ChanOp{Key: key, Pos: e.Pos()})
					}
					return true
				}
			}
			if goCalls[e] {
				return true
			}
			for _, callee := range prog.Callees(pkg, e) {
				if !calledKeys[callee.Key] {
					calledKeys[callee.Key] = true
					s.Calls = append(s.Calls, callee)
				}
			}
		case *ast.SendStmt:
			if key := chanKey(pkg, e.Chan); key != "" {
				s.Sends = append(s.Sends, ChanOp{Key: key, Pos: e.Arrow})
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				if key := chanKey(pkg, e.X); key != "" {
					s.Recvs = append(s.Recvs, ChanOp{Key: key, Pos: e.Pos()})
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if key := chanKey(pkg, e.X); key != "" {
						s.Recvs = append(s.Recvs, ChanOp{Key: key, Pos: e.X.Pos()})
					}
				}
			}
		}
		return true
	})
	return s
}

// lockKind describes what a sync mutex method call does.
type lockKind struct {
	acquire bool
	read    bool
}

var lockMethods = map[string]lockKind{
	"Lock":     {acquire: true},
	"RLock":    {acquire: true, read: true},
	"TryLock":  {acquire: true},
	"TryRLock": {acquire: true, read: true},
	"Unlock":   {},
	"RUnlock":  {read: true},
}

// lockCall reports whether call is a sync.Mutex / sync.RWMutex /
// sync.Locker method call, returning the lock's key and kind.
func lockCall(pkg *Package, call *ast.CallExpr) (key string, kind lockKind, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", lockKind{}, false
	}
	kind, known := lockMethods[sel.Sel.Name]
	if !known {
		return "", lockKind{}, false
	}
	selInfo, hasSel := pkg.Info.Selections[sel]
	if !hasSel || selInfo.Kind() != types.MethodVal {
		return "", lockKind{}, false
	}
	m, _ := selInfo.Obj().(*types.Func)
	if m == nil || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", lockKind{}, false
	}
	key = lockKeyOf(pkg, sel.X)
	if key == "" {
		return "", lockKind{}, false
	}
	return key, kind, true
}

// lockKeyOf derives the cross-unit identity of the mutex denoted by expr
// (the receiver of a Lock call).
func lockKeyOf(pkg *Package, expr ast.Expr) string {
	e := ast.Unparen(expr)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// Field access s.mu (possibly chained): key on the owning named
		// type, so every instance of the struct shares the key.
		if selInfo, ok := pkg.Info.Selections[x]; ok && selInfo.Kind() == types.FieldVal {
			if name := namedTypeName(selInfo.Recv()); name != "" {
				return name + "." + x.Sel.Name
			}
		}
		// Qualified package-level var otherpkg.mu.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := identVar(pkg, x)
		if !ok {
			return ""
		}
		if isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
		// b.Lock() where b's type embeds sync.Mutex: key on b's named
		// type rather than the variable.
		if name := namedTypeName(v.Type()); name != "" && !isSyncType(v.Type()) {
			return name + ".#embedded"
		}
		return localKey(pkg, v)
	}
	return ""
}

// chanKey derives the cross-unit identity of the channel denoted by expr,
// or "" when no stable identity exists (call results, map/slice elements).
func chanKey(pkg *Package, expr ast.Expr) string {
	e := ast.Unparen(expr)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := pkg.Info.Selections[x]; ok && selInfo.Kind() == types.FieldVal {
			if name := namedTypeName(selInfo.Recv()); name != "" {
				return name + "." + x.Sel.Name
			}
			return ""
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := identVar(pkg, x)
		if !ok {
			return ""
		}
		if isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
		return localKey(pkg, v)
	}
	return ""
}

func identVar(pkg *Package, id *ast.Ident) (*types.Var, bool) {
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// localKey identifies a local variable by its definition site, so the
// enclosing function and closures capturing the variable agree.
func localKey(pkg *Package, v *types.Var) string {
	p := pkg.Fset.Position(v.Pos())
	path := ""
	if v.Pkg() != nil {
		path = v.Pkg().Path()
	}
	return fmt.Sprintf("%s.%s@%s:%d", path, v.Name(), shortFile(p.Filename), p.Offset)
}

// namedTypeName renders the (pointer-stripped) named type of t as
// "<pkgpath>.<Name>", or "" if t is not named.
func namedTypeName(t types.Type) string {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func isSyncType(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
