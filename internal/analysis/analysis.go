// Package analysis is a self-contained static-analysis framework for this
// repository: a loader that typechecks packages using the gc toolchain's
// export data (no external dependencies), a small analyzer interface in
// the spirit of go/analysis, and the custom analyzers behind cmd/dcfvet
// that machine-check invariants which previously lived only in READMEs and
// review memory (buffer-ownership Fresh marking, gob wire safety, test
// hygiene, context threading, panic-free hot paths).
//
// Suppressing a finding: add a comment on the flagged line (or the line
// directly above it) of the form
//
//	// dcfvet:allow <analyzer>=<reason>
//
// The reason is mandatory in spirit — a bare allow passes, but reviewers
// should treat one as a smell.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the packages and returns the surviving
// findings (allow-annotated ones are dropped), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	diags = filterAllowed(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// filterAllowed drops findings suppressed by a "dcfvet:allow <name>"
// comment on the finding's line or the line above it.
func filterAllowed(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// allowed[file][line] = set of analyzer names allowed there.
	allowed := map[string]map[int]map[string]bool{}
	note := func(file string, line int, name string) {
		if allowed[file] == nil {
			allowed[file] = map[int]map[string]bool{}
		}
		if allowed[file][line] == nil {
			allowed[file][line] = map[string]bool{}
		}
		allowed[file][line][name] = true
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "dcfvet:allow ") {
						continue
					}
					spec := strings.TrimSpace(strings.TrimPrefix(text, "dcfvet:allow "))
					name, _, _ := strings.Cut(spec, "=")
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					// The annotation covers its own line and the next:
					// both trailing comments and line-above comments work.
					note(pos.Filename, pos.Line, name)
					note(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if allowed[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// isTestFile reports whether the file's position is in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// namedOrPointee unwraps pointers down to the element type.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// All returns every analyzer dcfvet ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		FreshForward,
		GobSafe,
		TestSleep,
		CtxThread,
		PanicPath,
		BackoffJitter,
		MetricName,
	}
}
