// Package analysis is a self-contained static-analysis framework for this
// repository: a loader that typechecks packages using the gc toolchain's
// export data (no external dependencies), a small analyzer interface in
// the spirit of go/analysis, and the custom analyzers behind cmd/dcfvet
// that machine-check invariants which previously lived only in READMEs and
// review memory (buffer-ownership Fresh marking, gob wire safety, test
// hygiene, context threading, panic-free hot paths).
//
// Suppressing a finding: add a comment on the flagged line (or the line
// directly above it) of the form
//
//	// dcfvet:allow <analyzer>=<reason>
//
// The reason is mandatory in spirit — a bare allow passes, but reviewers
// should treat one as a smell.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named check. Per-package analyzers set Run; whole-
// program analyzers (which need the callgraph and effect summaries — see
// callgraph.go) set RunProgram instead. Exactly one must be non-nil.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass is the per-analyzer whole-program invocation context.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	diags    *[]Diagnostic
}

// Reportf records a finding at pos, resolved through the file set of the
// package that owns fn.
func (p *ProgramPass) Reportf(fn *Function, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      fn.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the packages and returns the surviving
// findings (allow-annotated ones are dropped), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunDetail(pkgs, analyzers)
	return diags
}

// Allow is one parsed "dcfvet:allow" annotation.
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// RunDetail is Run plus staleness accounting: the second result lists
// allow annotations that suppressed nothing in this run (only annotations
// naming one of the selected analyzers are considered — an allow for an
// analyzer that did not run cannot be judged). cmd/dcfvet surfaces these
// under -unused-allows so suppressions cannot outlive the code they
// excused.
func RunDetail(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Allow) {
	var diags []Diagnostic
	needProgram := false
	for _, a := range analyzers {
		if a.RunProgram != nil {
			needProgram = true
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
			}
		}
	}
	if needProgram {
		// The Program (callgraph + effect summaries) is built once and
		// shared by every whole-program analyzer.
		prog := BuildProgram(pkgs)
		for _, a := range analyzers {
			if a.RunProgram != nil {
				a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, diags: &diags})
			}
		}
	}
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	diags, unused := filterAllowed(pkgs, diags, selected)
	sortDiagnostics(diags)
	sort.Slice(unused, func(i, j int) bool {
		a, b := unused[i], unused[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, unused
}

// sortDiagnostics pins the reporting order: (file, line, column, analyzer,
// message). The full tiebreak chain makes runs byte-identical even when
// several analyzers fire on one line — CI failures diff cleanly.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// allowSite is one annotation with its coverage and use tracking.
type allowSite struct {
	allow Allow
	used  bool
}

// filterAllowed drops findings suppressed by a "dcfvet:allow <name>"
// comment on the finding's line or the line above it, and reports the
// annotations (among the selected analyzers) that suppressed nothing.
func filterAllowed(pkgs []*Package, diags []Diagnostic, selected map[string]bool) ([]Diagnostic, []Allow) {
	var sites []*allowSite
	// allowed[file][line] = annotations covering that line per analyzer.
	allowed := map[string]map[int]map[string]*allowSite{}
	note := func(file string, line int, name string, s *allowSite) {
		if allowed[file] == nil {
			allowed[file] = map[int]map[string]*allowSite{}
		}
		if allowed[file][line] == nil {
			allowed[file][line] = map[string]*allowSite{}
		}
		allowed[file][line][name] = s
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "dcfvet:allow ") {
						continue
					}
					spec := strings.TrimSpace(strings.TrimPrefix(text, "dcfvet:allow "))
					name, reason, _ := strings.Cut(spec, "=")
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					s := &allowSite{allow: Allow{Pos: pos, Analyzer: name, Reason: strings.TrimSpace(reason)}}
					sites = append(sites, s)
					// The annotation covers its own line and the next:
					// both trailing comments and line-above comments work.
					note(pos.Filename, pos.Line, name, s)
					note(pos.Filename, pos.Line+1, name, s)
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if s := allowed[d.Pos.Filename][d.Pos.Line][d.Analyzer]; s != nil {
			s.used = true
			continue
		}
		out = append(out, d)
	}
	var unused []Allow
	for _, s := range sites {
		if !s.used && selected[s.allow.Analyzer] {
			unused = append(unused, s.allow)
		}
	}
	return out, unused
}

// isTestFile reports whether the file's position is in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// namedOrPointee unwraps pointers down to the element type.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// All returns every analyzer dcfvet ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		FreshForward,
		GobSafe,
		TestSleep,
		CtxThread,
		PanicPath,
		BackoffJitter,
		MetricName,
		LockOrder,
		GoroLeak,
		UnsafeSend,
	}
}
