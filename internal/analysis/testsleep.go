package analysis

import (
	"go/ast"
	"go/token"
)

// TestSleep bans bare time.Sleep in _test.go files. Sleeping for "long
// enough" is how the PR 5 CI smoke test went flaky: the right duration
// depends on machine load, so the test either wastes wall-clock or races.
// Synchronize on the event instead — a channel, sync.WaitGroup, or a poll
// loop with a deadline.
//
// A Sleep inside a for/range body is NOT flagged: that is the poll-loop
// pattern this analyzer recommends (the loop re-checks a condition, so the
// interval only tunes latency, not correctness). Straight-line sleeps that
// *simulate work* (fake kernel latency, staged cancellation mid-step) are
// legitimate too; annotate those lines with
// "// dcfvet:allow testsleep=<why>".
var TestSleep = &Analyzer{
	Name: "testsleep",
	Doc:  "no bare time.Sleep in _test.go files; synchronize on the event or poll in a loop",
	Run:  runTestSleep,
}

func runTestSleep(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if !isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		// Collect the extents of every loop body: a Sleep inside one is a
		// poll interval, not a synchronization guess.
		type span struct{ lo, hi token.Pos }
		var loops []span
		ast.Inspect(f, func(n ast.Node) bool {
			switch l := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, span{l.Body.Pos(), l.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, span{l.Body.Pos(), l.Body.End()})
			}
			return true
		})
		inLoop := func(p token.Pos) bool {
			for _, s := range loops {
				if s.lo <= p && p < s.hi {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && !inLoop(call.Pos()) {
				pass.Reportf(call.Pos(), "time.Sleep in a test: synchronize on the event (channel, WaitGroup, or deadline poll) instead of sleeping")
			}
			return true
		})
	}
}
