package analysis

import (
	"go/ast"
	"strings"
)

// PanicPath bans panic() in the executor's hot-path packages. A panic in a
// kernel or scheduler goroutine kills the whole process — every concurrent
// step, every registered graph — where a diagnosed error would fail one
// step with a message naming the node. Registry init-time panics
// (duplicate op registration) and builder-API Must* helpers are the
// sanctioned exceptions; they carry dcfvet:allow annotations at the site.
var PanicPath = &Analyzer{
	Name: "panicpath",
	Doc:  "no panic() in internal/exec, internal/graph, internal/ops non-test code; fail the step with a diagnosed error",
	Run:  runPanicPath,
}

var panicPathPkgs = map[string]bool{
	"repro/internal/exec":  true,
	"repro/internal/graph": true,
	"repro/internal/ops":   true,
}

func runPanicPath(pass *Pass) {
	if !panicPathPkgs[strings.TrimSuffix(pass.Pkg.Path, ":xtest")] {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				pass.Reportf(call.Pos(), "panic in a hot-path package kills every concurrent step; return a diagnosed error naming the node/op instead")
			}
			return true
		})
	}
}
