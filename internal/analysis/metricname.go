package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricName enforces the repository's metric naming convention at every
// instrument-creation site: any constant string passed to a Counter,
// Gauge, or Histogram method on a metrics Registry must be snake_case and
// must end in a unit suffix, with counters specifically ending in _total
// (the Prometheus convention for monotonic counts). Names are API: a
// misspelled or camelCased metric ships silently and then breaks every
// dashboard that queries it, so the grep-rule lives here instead of in
// review memory. Dynamically computed names can't be checked and pass
// through unflagged.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names must be snake_case with a unit suffix (_total, _ns, _bytes, _rows, _depth, _count, _ratio, _seconds); counters must end in _total",
	Run:  runMetricName,
}

// metricUnitSuffixes are the approved trailing units. _total is counter-only.
var metricUnitSuffixes = []string{"_total", "_ns", "_bytes", "_rows", "_depth", "_count", "_ratio", "_seconds"}

// snakeRE: lowercase words joined by single underscores, starting with a
// letter (so "exec_steps_total" passes; "ExecSteps", "exec__steps", and
// "2fast" do not).
var snakeRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runMetricName(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			// Tests create scratch registries with deliberately colliding
			// or throwaway names; only shipped instruments are API.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
				return true
			}
			if !isRegistryRecv(pass, sel.X) {
				return true
			}
			tv, found := pass.Pkg.Info.Types[call.Args[0]]
			if !found || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic name: nothing to check statically
			}
			name := constant.StringVal(tv.Value)
			if !snakeRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not snake_case (want lowercase words joined by single underscores)", name)
				return true
			}
			unit := ""
			for _, s := range metricUnitSuffixes {
				if strings.HasSuffix(name, s) {
					unit = s
					break
				}
			}
			switch {
			case unit == "":
				pass.Reportf(call.Args[0].Pos(), "metric name %q has no unit suffix (want one of %s)", name, strings.Join(metricUnitSuffixes, ", "))
			case kind == "Counter" && unit != "_total":
				pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total (monotonic counts read as totals)", name)
			case kind != "Counter" && unit == "_total":
				pass.Reportf(call.Args[0].Pos(), "%s %q must not end in _total (that suffix promises a monotonic counter)", strings.ToLower(kind), name)
			}
			return true
		})
	}
}

// isRegistryRecv reports whether the expression's type (possibly through
// pointers) is a named type called Registry — the metrics registry, or a
// fixture standing in for it.
func isRegistryRecv(pass *Pass, x ast.Expr) bool {
	tv, found := pass.Pkg.Info.Types[x]
	if !found || tv.Type == nil {
		return false
	}
	named, ok := deref(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Registry"
}
