// UnsafeSend flags sends on channels that a DIFFERENT function can close.
// Sending on a closed channel panics, so a send and a close reachable from
// separate functions is a crash waiting on goroutine timing unless some
// external protocol serializes them — and that protocol deserves either a
// refactor (single owner closes after all sends provably stop) or an
// explicit dcfvet:allow stating the invariant.
//
// A close in the same function as the send is the ordinary producer
// pattern (send everything, then close) and is not flagged. Closes in
// _test.go files never count against production sends.
package analysis

var UnsafeSend = &Analyzer{
	Name:       "unsafesend",
	Doc:        "no sends on channels another function can close (racing close panics the send)",
	RunProgram: runUnsafeSend,
}

func runUnsafeSend(pass *ProgramPass) {
	prog := pass.Prog
	for _, fn := range prog.Order {
		if fn.testFile {
			continue
		}
		for _, send := range fn.Summary.Sends {
			var closer *Function
			for _, c := range prog.closes[send.Key] {
				if c.Key != fn.Key {
					closer = c
					break
				}
			}
			if closer == nil {
				continue
			}
			pass.Reportf(fn, send.Pos,
				"send on %s which %s closes; a close racing this send panics — serialize them or document the protocol with an allow",
				trimModule(send.Key), closer.Name())
		}
	}
}
