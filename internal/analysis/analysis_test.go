package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// The fixture module under testdata/violations seeds at least one violation
// per analyzer, marked in-source with "// WANT:<analyzer>[ <analyzer>...]"
// trailing comments. Each analyzer's test demands an exact match between
// its markers and its findings — extra findings and missed markers both
// fail, so the fixtures also pin down what must NOT be flagged (allow
// annotations, poll-loop sleeps, Fresh: true kernels, Ctx-sibling shims).

const fixtureDir = "testdata/violations"

var fixture struct {
	once   sync.Once
	pkgs   []*analysis.Package
	diags  []analysis.Diagnostic
	unused []analysis.Allow
	err    error
}

func fixtureDiags(t *testing.T) []analysis.Diagnostic {
	t.Helper()
	fixture.once.Do(func() {
		pkgs, err := analysis.Load(fixtureDir, "./...")
		if err != nil {
			fixture.err = err
			return
		}
		fixture.pkgs = pkgs
		fixture.diags, fixture.unused = analysis.RunDetail(pkgs, analysis.All())
	})
	if fixture.err != nil {
		t.Fatalf("loading fixture module: %v", fixture.err)
	}
	return fixture.diags
}

var wantRE = regexp.MustCompile(`// WANT:(\w+(?: \w+)*)`)

// wantMarkers scans the fixture tree for WANT comments and returns
// "relpath:line" keys per analyzer (repeated when a line expects several
// findings from the same analyzer).
func wantMarkers(t *testing.T) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	err := filepath.WalkDir(fixtureDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(fixtureDir, path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, name := range strings.Fields(m[1]) {
				want[name] = append(want[name], rel+":"+strconv.Itoa(i+1))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return want
}

// checkAnalyzer asserts the analyzer's findings over the fixture module
// exactly match its WANT markers.
func checkAnalyzer(t *testing.T, name string) {
	t.Helper()
	diags := fixtureDiags(t)
	root, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		if d.Analyzer != name {
			continue
		}
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		got = append(got, rel+":"+strconv.Itoa(d.Pos.Line))
	}
	want := wantMarkers(t)[name]
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s findings mismatch:\n got: %v\nwant: %v", name, got, want)
		for _, d := range diags {
			if d.Analyzer == name {
				t.Logf("  finding: %s", d)
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture has no WANT:%s markers; the seeded-violation self-test is vacuous", name)
	}
}

func TestFreshForwardFixture(t *testing.T) { checkAnalyzer(t, "freshforward") }
func TestGobSafeFixture(t *testing.T)      { checkAnalyzer(t, "gobsafe") }
func TestTestSleepFixture(t *testing.T)    { checkAnalyzer(t, "testsleep") }
func TestCtxThreadFixture(t *testing.T)    { checkAnalyzer(t, "ctxthread") }
func TestPanicPathFixture(t *testing.T)    { checkAnalyzer(t, "panicpath") }

func TestBackoffJitterFixture(t *testing.T) { checkAnalyzer(t, "backoffjitter") }

func TestMetricNameFixture(t *testing.T) { checkAnalyzer(t, "metricname") }

// The whole-program (callgraph + effect summary) analyzers: the fixtures
// seed cycles and leaks through generic helpers, method values used as
// callbacks, and closures captured by go statements, so these tests also
// pin the callgraph's resolution of those shapes.

func TestLockOrderFixture(t *testing.T)  { checkAnalyzer(t, "lockorder") }
func TestGoroLeakFixture(t *testing.T)   { checkAnalyzer(t, "goroleak") }
func TestUnsafeSendFixture(t *testing.T) { checkAnalyzer(t, "unsafesend") }

// TestUnusedAllows pins the staleness accounting: the fixture seeds
// exactly one allow annotation that suppresses nothing.
func TestUnusedAllows(t *testing.T) {
	fixtureDiags(t)
	if len(fixture.unused) != 1 {
		t.Fatalf("want exactly 1 unused allow, got %v", fixture.unused)
	}
	u := fixture.unused[0]
	if u.Analyzer != "unsafesend" || !strings.HasSuffix(u.Pos.Filename, "chans/chans.go") {
		t.Fatalf("unexpected unused allow: %+v", u)
	}
	if u.Reason == "" {
		t.Fatalf("unused allow lost its reason: %+v", u)
	}
}

// TestFindingsDeterministicOrder pins the reporting order — (file, line,
// column, analyzer, message) — and that a second run over the same
// packages reproduces it byte for byte.
func TestFindingsDeterministicOrder(t *testing.T) {
	diags := fixtureDiags(t)
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message <= b.Message
	}) {
		t.Fatalf("findings not sorted by (file, line, column, analyzer, message):\n%v", diags)
	}
	again := analysis.Run(fixture.pkgs, analysis.All())
	if len(again) != len(diags) {
		t.Fatalf("re-run produced %d findings, first run %d", len(again), len(diags))
	}
	for i := range diags {
		if diags[i] != again[i] {
			t.Fatalf("finding %d differs across runs:\n first: %s\nsecond: %s", i, diags[i], again[i])
		}
	}
}

// TestUnknownAnalyzersUnmarked guards against typos in WANT markers.
func TestUnknownAnalyzersUnmarked(t *testing.T) {
	known := map[string]bool{}
	for _, a := range analysis.All() {
		known[a.Name] = true
	}
	for name := range wantMarkers(t) {
		if !known[name] {
			t.Errorf("WANT marker names unknown analyzer %q", name)
		}
	}
}

// TestRepoIsVetClean runs every analyzer over the real module — the same
// gate CI applies via cmd/dcfvet.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := analysis.Run(pkgs, analysis.All())
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
}
