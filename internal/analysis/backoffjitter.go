package analysis

import (
	"go/ast"
	"go/token"
)

// BackoffJitter bans fixed-duration waits inside retry loops in non-test
// code. A constant time.Sleep (or time.After arm) in a loop is how a fleet
// synchronizes its own thundering herd: every client that failed together
// retries together, forever — the PR 5 rendezvous dialer did exactly this
// until its reconnect storm was jittered. Waits whose duration is computed
// at runtime are fine; the analyzer only flags compile-time-constant
// durations, because those are the ones that cannot possibly desynchronize.
//
// Use the shared helper instead: backoff.Jitter(d) for a one-knob interval,
// backoff.Exp{Base, Max}.Delay(attempt) for a growing schedule. A fixed
// in-loop wait that genuinely is not a retry (a pacing loop in a benchmark,
// say) can be annotated "// dcfvet:allow backoffjitter=<why>".
var BackoffJitter = &Analyzer{
	Name: "backoffjitter",
	Doc:  "retry loops must not sleep a fixed duration; use internal/backoff's jittered helpers",
	Run:  runBackoffJitter,
}

func runBackoffJitter(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		// Collect loop-body extents: a wait only herds when it repeats.
		type span struct{ lo, hi token.Pos }
		var loops []span
		ast.Inspect(f, func(n ast.Node) bool {
			switch l := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, span{l.Body.Pos(), l.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, span{l.Body.Pos(), l.Body.End()})
			}
			return true
		})
		inLoop := func(p token.Pos) bool {
			for _, s := range loops {
				if s.lo <= p && p < s.hi {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Sleep" && sel.Sel.Name != "After") {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != "time" || !inLoop(call.Pos()) {
				return true
			}
			// Constant argument = every iteration (and every process built
			// from this source) waits exactly the same span.
			if tv, found := pass.Pkg.Info.Types[call.Args[0]]; found && tv.Value != nil {
				pass.Reportf(call.Pos(), "fixed time.%s interval in a loop: jitter it (backoff.Jitter or backoff.Exp.Delay) so synchronized retries don't stampede", sel.Sel.Name)
			}
			return true
		})
	}
}
