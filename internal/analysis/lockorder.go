// LockOrder builds the inter-procedural mutex acquisition graph: an edge
// A -> B means some goroutine acquires B while holding A, either directly
// or through a chain of calls (callee acquisitions come from the
// transitive effect summaries; `go`-spawned callees are excluded because
// they run on their own goroutine). A cycle in that graph is a potential
// deadlock: two goroutines entering the cycle from different points block
// each other forever. One finding is reported per cycle, at the earliest
// witnessing acquisition.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "mutex acquisition order must be globally consistent (the inter-procedural lock graph stays acyclic)",
	RunProgram: runLockOrder,
}

// lockEdge is one witnessed held -> acquired pair.
type lockEdge struct {
	from, to string
	fn       *Function
	pos      token.Pos
	via      string // callee name when the acquisition is transitive, "" when direct
}

func runLockOrder(pass *ProgramPass) {
	edges := map[[2]string]*lockEdge{} // first witness wins; walk order is deterministic
	for _, fn := range pass.Prog.Order {
		if fn.testFile {
			continue
		}
		walkLocks(pass.Prog, fn, edges)
	}

	// Adjacency over lock keys, nodes sorted for deterministic SCCs.
	adj := map[string][]string{}
	nodeSet := map[string]bool{}
	for k, e := range edges {
		adj[k[0]] = append(adj[k[0]], e.to)
		nodeSet[e.from], nodeSet[e.to] = true, true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, out := range adj {
		sort.Strings(out)
	}

	for _, scc := range tarjanSCC(nodes, adj) {
		if len(scc) < 2 {
			continue // self-edges (recursive acquisition) are not order inversions
		}
		inCycle := map[string]bool{}
		for _, n := range scc {
			inCycle[n] = true
		}
		// Witness: the earliest-positioned edge inside the cycle.
		var witness *lockEdge
		for k, e := range edges {
			if !inCycle[k[0]] || !inCycle[k[1]] {
				continue
			}
			if witness == nil || posLess(e, witness) {
				witness = e
			}
		}
		if witness == nil {
			continue
		}
		sort.Strings(scc)
		var short []string
		for _, n := range scc {
			short = append(short, trimModule(n))
		}
		via := ""
		if witness.via != "" {
			via = fmt.Sprintf(" via %s", witness.via)
		}
		pass.Reportf(witness.fn, witness.pos,
			"lock-order cycle {%s}: %s acquired%s while %s is held; pick one acquisition order",
			strings.Join(short, ", "), trimModule(witness.to), via, trimModule(witness.from))
	}
}

func posLess(a, b *lockEdge) bool {
	pa := a.fn.Pkg.Fset.Position(a.pos)
	pb := b.fn.Pkg.Fset.Position(b.pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}

// walkLocks walks fn's body in source order with a held-lock set,
// recording held -> acquired edges. Branches of control-flow statements
// each see a copy of the held set — acquisitions inside a branch do not
// leak past it, which keeps `if x { mu.Lock(); ...; mu.Unlock() }`
// patterns from poisoning the rest of the function.
func walkLocks(prog *Program, fn *Function, edges map[[2]string]*lockEdge) {
	body := fn.Body()
	if body == nil {
		return
	}
	pkg := fn.Pkg
	goCalls := goCallsOf(fn)

	addEdge := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return
		}
		k := [2]string{from, to}
		if edges[k] == nil {
			edges[k] = &lockEdge{from: from, to: to, fn: fn, pos: pos, via: via}
		}
	}
	copyOf := func(held map[string]bool) map[string]bool {
		c := make(map[string]bool, len(held))
		for k := range held {
			c[k] = true
		}
		return c
	}

	// walkExpr scans an expression subtree (no nested literals) for lock
	// operations and calls, in source order.
	var walkExpr func(e ast.Node, held map[string]bool)
	walkExpr = func(e ast.Node, held map[string]bool) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, kind, ok := lockCall(pkg, call); ok {
				if kind.acquire {
					for h := range held {
						addEdge(h, key, call.Pos(), "")
					}
					held[key] = true
				} else {
					delete(held, key)
				}
				return true
			}
			if goCalls[call] {
				return true // spawned call runs elsewhere; its args still walk
			}
			for _, callee := range prog.Callees(pkg, call) {
				if callee.Summary == nil {
					continue
				}
				for k := range callee.Summary.Trans {
					for h := range held {
						addEdge(h, k, call.Pos(), callee.Name())
					}
				}
			}
			return true
		})
	}

	var walkStmt func(s ast.Stmt, held map[string]bool)
	walkBlock := func(b *ast.BlockStmt, held map[string]bool) {
		if b == nil {
			return
		}
		for _, s := range b.List {
			walkStmt(s, held)
		}
	}
	walkStmt = func(s ast.Stmt, held map[string]bool) {
		switch st := s.(type) {
		case nil:
		case *ast.BlockStmt:
			walkBlock(st, held)
		case *ast.IfStmt:
			walkStmt(st.Init, held)
			walkExpr(st.Cond, held)
			walkBlock(st.Body, copyOf(held))
			if st.Else != nil {
				walkStmt(st.Else, copyOf(held))
			}
		case *ast.ForStmt:
			walkStmt(st.Init, held)
			walkExpr(st.Cond, held)
			inner := copyOf(held)
			walkBlock(st.Body, inner)
			walkStmt(st.Post, inner)
		case *ast.RangeStmt:
			walkExpr(st.X, held)
			walkBlock(st.Body, copyOf(held))
		case *ast.SwitchStmt:
			walkStmt(st.Init, held)
			walkExpr(st.Tag, held)
			for _, c := range st.Body.List {
				cc := c.(*ast.CaseClause)
				branch := copyOf(held)
				for _, e := range cc.List {
					walkExpr(e, branch)
				}
				for _, bs := range cc.Body {
					walkStmt(bs, branch)
				}
			}
		case *ast.TypeSwitchStmt:
			walkStmt(st.Init, held)
			walkStmt(st.Assign, held)
			for _, c := range st.Body.List {
				cc := c.(*ast.CaseClause)
				branch := copyOf(held)
				for _, bs := range cc.Body {
					walkStmt(bs, branch)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				cc := c.(*ast.CommClause)
				branch := copyOf(held)
				walkStmt(cc.Comm, branch)
				for _, bs := range cc.Body {
					walkStmt(bs, branch)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt, held)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end, which
			// is exactly what the held set should reflect: do nothing. Any
			// other deferred call is approximated at the defer site.
			if key, kind, ok := lockCall(pkg, st.Call); ok {
				if kind.acquire {
					for h := range held {
						addEdge(h, key, st.Call.Pos(), "")
					}
					held[key] = true
				}
				return
			}
			walkExpr(st.Call, held)
		default:
			// Expression-bearing statements (ExprStmt, Assign, Return,
			// Send, Go, Decl, Inc/Dec, ...): scan in source order.
			walkExpr(s, held)
		}
	}
	walkStmt(body, map[string]bool{})
}

// tarjanSCC returns the strongly connected components of the directed
// graph, in deterministic order given sorted nodes and adjacency.
func tarjanSCC(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongConnect(v)
		}
	}
	return sccs
}
