// GoroLeak flags `go` statements that can park a goroutine forever: the
// spawned function blocks on a channel operation with no reachable escape.
// An escape is any of
//
//   - a select with a default case (non-blocking), or with a case on
//     ctx.Done(), a timer (time.After / Tick / .C), or a channel whose
//     name says shutdown (quit, done, stop, close, ...)
//   - blocking on a channel some non-spawned function closes (a closed
//     channel unblocks receivers)
//   - for sends: a receive on the same channel anywhere outside the
//     spawned function (the result-channel handshake pattern)
//
// The check is intraprocedural over the spawned body: a goroutine that
// delegates its blocking to a callee is not analyzed, trading recall for
// a near-zero false-positive rate on the patterns this codebase uses.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

var GoroLeak = &Analyzer{
	Name:       "goroleak",
	Doc:        "spawned goroutines must not block forever: channel waits need a ctx/quit/close escape",
	RunProgram: runGoroLeak,
}

// escapeName matches channel identifiers that conventionally signal
// shutdown; blocking on one of these is the escape, not the leak.
var escapeName = regexp.MustCompile(`(?i)^(quit|done|stop|exit|shutdown|clos(e|ed|ing)|cancel|term|die|kill)`)

func runGoroLeak(pass *ProgramPass) {
	reported := map[string]bool{} // spawned-function key: one spawn site is enough
	for _, fn := range pass.Prog.Order {
		if fn.testFile {
			continue
		}
		for _, sp := range fn.Summary.Spawns {
			g := sp.Callee
			if g == nil || g.Body() == nil || g.testFile || reported[g.Key] {
				continue
			}
			reported[g.Key] = true
			checkSpawned(pass, g)
		}
	}
}

func checkSpawned(pass *ProgramPass, g *Function) {
	pkg := g.Pkg
	prog := pass.Prog

	// Channel operations that are the communication of a select clause are
	// judged with the whole select, not individually.
	inSelect := map[ast.Node]bool{}
	inspectOwn(g, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				ast.Inspect(comm, func(m ast.Node) bool {
					inSelect[m] = true
					return true
				})
			}
		}
		return true
	})

	inspectOwn(g, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SelectStmt:
			escapes := false
			for _, c := range st.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil { // default case: never blocks
					escapes = true
					break
				}
				if e := commChan(pkg, cc.Comm); e != nil && chanEscapes(prog, pkg, g, e, commIsSend(cc.Comm)) {
					escapes = true
					break
				}
			}
			if !escapes {
				pass.Reportf(g, st.Select,
					"goroutine spawned as %s can block forever in select: no default and no ctx/quit/closed-channel case", g.Name())
			}
		case *ast.SendStmt:
			if inSelect[st] {
				return true
			}
			if !chanEscapes(prog, pkg, g, st.Chan, true) {
				pass.Reportf(g, st.Arrow,
					"goroutine spawned as %s can block forever sending on %s: nothing outside it receives and no escape path exists", g.Name(), render(st.Chan))
			}
		case *ast.UnaryExpr:
			if st.Op != token.ARROW || inSelect[st] {
				return true
			}
			if !chanEscapes(prog, pkg, g, st.X, false) {
				pass.Reportf(g, st.OpPos,
					"goroutine spawned as %s can block forever receiving from %s: the channel is never closed and is not a shutdown signal", g.Name(), render(st.X))
			}
		case *ast.RangeStmt:
			tv, ok := pkg.Info.Types[st.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			if !chanEscapes(prog, pkg, g, st.X, false) {
				pass.Reportf(g, st.For,
					"goroutine spawned as %s ranges over %s which is never closed: the loop can never terminate", g.Name(), render(st.X))
			}
		}
		return true
	})
}

// commChan extracts the channel expression of a select communication.
func commChan(pkg *Package, comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

func commIsSend(comm ast.Stmt) bool {
	_, ok := comm.(*ast.SendStmt)
	return ok
}

// chanEscapes reports whether blocking on e has an escape path.
func chanEscapes(prog *Program, pkg *Package, g *Function, e ast.Expr, send bool) bool {
	e = ast.Unparen(e)
	if isEscapeExpr(pkg, e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := identVar(pkg, id); ok && !isPkgLevel(v) && chanIsAlias(prog, pkg, v) {
			// The local is a copy of state read from a field, map or call
			// (`ch := c.replyCh`): its def-site key cannot line up with the
			// closes/recvs of the channel it actually aliases, so any
			// verdict would be a guess. Stay silent.
			return true
		}
	}
	key := chanKey(pkg, e)
	if key == "" {
		// No stable identity (call result, map element): stay silent
		// rather than guess.
		return true
	}
	if len(prog.closes[key]) > 0 {
		// Someone closes it: receivers unblock. For senders a close is a
		// panic, not an escape — but that is unsafesend's finding, and
		// the close at least proves lifecycle management exists.
		return true
	}
	if send {
		for _, r := range prog.recvs[key] {
			if r.Key != g.Key {
				return true
			}
		}
	}
	return false
}

// isEscapeExpr recognizes expressions that are escape hatches by
// construction or by convention: ctx.Done(), timer channels, and
// shutdown-named channels.
func isEscapeExpr(pkg *Package, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Done": // ctx.Done() and anything shaped like it
				return true
			case "After", "Tick", "NewTimer":
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		if t := typeOf(pkg, x.X); t != nil && x.Sel.Name == "C" { // t.C on timers/tickers
			if named, ok := deref(t).(*types.Named); ok {
				if o := named.Obj(); o.Pkg() != nil && o.Pkg().Path() == "time" {
					return true
				}
			}
		}
		return escapeName.MatchString(x.Sel.Name)
	case *ast.Ident:
		return escapeName.MatchString(x.Name)
	}
	return false
}

// chanIsAlias reports whether the local channel variable v is ever
// assigned from anything other than a make(chan ...) in its defining
// function. Such a variable is an alias of a channel keyed elsewhere —
// its own definition-site key is meaningless. Parameters (no assignment
// in any body) are NOT aliases: they are the spawned function's contract
// and keep their identity.
func chanIsAlias(prog *Program, pkg *Package, v *types.Var) bool {
	owner := enclosingFunc(prog, pkg, v.Pos())
	if owner == nil {
		return false
	}
	alias := false
	inspectOwn(owner, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj, found := identVar(pkg, id)
				if !found || obj != v {
					continue
				}
				if len(st.Rhs) != len(st.Lhs) || !isMakeChan(pkg, st.Rhs[i]) {
					alias = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				obj, found := identVar(pkg, id)
				if !found || obj != v || len(st.Values) == 0 {
					continue
				}
				if i >= len(st.Values) || !isMakeChan(pkg, st.Values[i]) {
					alias = true
				}
			}
		}
		return true
	})
	return alias
}

func isMakeChan(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, builtin := pkg.Info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// enclosingFunc finds the innermost Program function in pkg whose body
// contains pos, or nil (package-level positions, parameter lists).
func enclosingFunc(prog *Program, pkg *Package, pos token.Pos) *Function {
	var best *Function
	for _, fn := range prog.Order {
		if fn.Pkg != pkg {
			continue
		}
		b := fn.Body()
		if b == nil || pos < b.Pos() || pos > b.End() {
			continue
		}
		if best == nil || b.Pos() > best.Body().Pos() {
			best = fn
		}
	}
	return best
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// render prints a channel expression compactly for messages.
func render(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return "'" + x.Name + "'"
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return "'" + id.Name + "." + x.Sel.Name + "'"
		}
		return "'" + x.Sel.Name + "'"
	}
	return "the channel"
}
