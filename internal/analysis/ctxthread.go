package analysis

import (
	"go/ast"
	"go/types"
)

// CtxThread keeps cancellation plumbed through the public API. Two rules:
//
//  1. An exported function that takes a context.Context must actually use
//     it — an ignored ctx parameter advertises cancellation the function
//     does not deliver.
//  2. An exported function that manufactures a context with
//     context.Background()/context.TODO() must be the documented
//     convenience shim: a sibling "<Name>Ctx" (same receiver) must exist
//     for callers who need real cancellation. Otherwise the API forces
//     every caller to lose cancellation.
var CtxThread = &Analyzer{
	Name: "ctxthread",
	Doc:  "exported entry points must thread context.Context (ctx params used; Background() only in shims with a <Name>Ctx sibling)",
	Run:  runCtxThread,
}

func runCtxThread(pass *Pass) {
	// Index exported function/method names per receiver type, to find
	// "<Name>Ctx" siblings.
	siblings := map[string]map[string]bool{} // receiver type name ("" = package func) -> name set
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			r := recvTypeName(fd)
			if siblings[r] == nil {
				siblings[r] = map[string]bool{}
			}
			siblings[r][fd.Name.Name] = true
		}
	}

	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkCtxParamUsed(pass, fd)
			checkBackgroundShim(pass, fd, siblings)
		}
	}
}

// checkCtxParamUsed flags a context.Context parameter that the body never
// references.
func checkCtxParamUsed(pass *Pass, fd *ast.FuncDecl) {
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(), "exported %s takes ctx but never uses it; thread it into blocking calls or drop the parameter", fd.Name.Name)
			}
		}
	}
}

// checkBackgroundShim flags context.Background()/TODO() calls in exported
// functions that are not shims over a <Name>Ctx variant.
func checkBackgroundShim(pass *Pass, fd *ast.FuncDecl, siblings map[string]map[string]bool) {
	r := recvTypeName(fd)
	if siblings[r][fd.Name.Name+"Ctx"] {
		return // documented convenience shim pattern
	}
	// A function that accepts a ctx may use Background() as a nil-arg
	// fallback; the caller's context still wins when provided.
	for _, field := range fd.Type.Params.List {
		if isContextType(pass, field.Type) {
			return
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "context" {
			pass.Reportf(call.Pos(), "exported %s calls context.%s with no %sCtx sibling; accept a ctx (or add %sCtx) so callers keep cancellation",
				fd.Name.Name, sel.Sel.Name, fd.Name.Name, fd.Name.Name)
		}
		return true
	})
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func isContextType(pass *Pass, e ast.Expr) bool {
	t := pass.Pkg.Info.Types[e].Type
	if t == nil {
		// Fall back to syntax when type info is incomplete.
		if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
			if id, ok := sel.X.(*ast.Ident); ok {
				return id.Name == "context"
			}
		}
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
