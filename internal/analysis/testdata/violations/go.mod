// Seeded-violation fixture for cmd/dcfvet. The module path deliberately
// mirrors the real module so path-scoped analyzers (panicpath) fire.
// Living under testdata/, it is invisible to the parent module's builds.
module repro

go 1.24
