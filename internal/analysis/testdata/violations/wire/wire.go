// Package wire seeds gobsafe violations: envelope types that do not
// survive a gob round trip.
package wire

import (
	"encoding/gob"
	"time"
)

// Leaky drops state on the wire: gob skips unexported fields and cannot
// encode channels.
type Leaky struct {
	Step   int
	secret string
	Notify chan int
}

// Clean survives the round trip; time.Time implements GobEncoder.
type Clean struct {
	Step int
	When time.Time
	Tags map[string][]string
}

// Send seeds two findings on one Encode call (unexported field + chan).
func Send(enc *gob.Encoder, e Leaky) error {
	return enc.Encode(e) // WANT:gobsafe gobsafe
}

// Recv decodes into the same leaky shape.
func Recv(dec *gob.Decoder) (Leaky, error) {
	var e Leaky
	err := dec.Decode(&e) // WANT:gobsafe gobsafe
	return e, err
}

// SendClean must not be flagged.
func SendClean(enc *gob.Encoder, e Clean) error {
	return enc.Encode(e)
}
