// Package chans seeds unsafesend violations: sends racing a close owned
// by a different function. Same-function close-after-send (the ordinary
// producer pattern) must stay silent.
package chans

// Q is a queue whose Close and Push race: a close landing mid-send panics.
type Q struct {
	ch chan int
}

// NewQ sizes the queue.
func NewQ(n int) *Q { return &Q{ch: make(chan int, n)} }

// Close terminates the stream.
func (q *Q) Close() { close(q.ch) }

// Push sends with no synchronization against Close.
func (q *Q) Push(v int) {
	q.ch <- v // WANT:unsafesend
}

// TryPush is equally unsafe: select-with-default still panics if the
// close lands first.
func (q *Q) TryPush(v int) bool {
	select {
	case q.ch <- v: // WANT:unsafesend
		return true
	default:
		return false
	}
}

// Drain receives until Close: receiving from a closed channel is safe.
// The allow below suppresses nothing — it seeds the -unused-allows check.
func (q *Q) Drain() int {
	t := 0 // dcfvet:allow unsafesend=stale: the send this excused moved away
	for v := range q.ch {
		t += v
	}
	return t
}

// Produce owns its channel end to end: all sends and the close live in
// one function, so no unsafesend finding.
func Produce(n int) chan int {
	out := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
		close(out)
	}()
	return out
}
