// Package exec seeds panicpath violations: its import path matches the
// real executor, where panic() is banned outside annotated sites.
package exec

// Explode panics on a hot path.
func Explode(step int) {
	if step < 0 {
		panic("negative step") // WANT:panicpath
	}
}

// Tolerated carries an allow annotation and must NOT be reported.
func Tolerated() {
	// dcfvet:allow panicpath=fixture-sanctioned
	panic("allowed")
}
