// Package retry seeds backoffjitter violations: fixed-duration waits
// inside retry loops in non-test code.
package retry

import "time"

const interval = 50 * time.Millisecond

// DialForever retries with fixed sleeps — the thundering-herd shape.
func DialForever(dial func() error) {
	for dial() != nil {
		time.Sleep(interval) // WANT:backoffjitter
	}
}

// WaitLoop herds just as hard through a select arm.
func WaitLoop(done <-chan struct{}, poke func()) {
	for {
		select {
		case <-done:
			return
		case <-time.After(100 * time.Millisecond): // WANT:backoffjitter
			poke()
		}
	}
}

// jitter stands in for the real backoff helper (the fixture module has no
// internal/backoff); what matters is that the duration is computed, not
// constant.
func jitter(d time.Duration) time.Duration { return d + d/2 }

// DialJittered is the recommended shape: not flagged.
func DialJittered(dial func() error) {
	for dial() != nil {
		time.Sleep(jitter(interval))
	}
}

// OneShotWait is not in a loop: a single fixed wait cannot herd. Not
// flagged.
func OneShotWait() {
	time.Sleep(interval)
}

// PacedLoop is a deliberate fixed-rate pacing loop, suppressed by
// annotation. Not flagged.
func PacedLoop(tickN int, step func()) {
	for i := 0; i < tickN; i++ {
		time.Sleep(interval) // dcfvet:allow backoffjitter=fixed-rate pacing, not a retry
		step()
	}
}
