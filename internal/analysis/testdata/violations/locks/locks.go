// Package locks seeds lockorder violations: mutex pairs acquired in
// opposite orders across functions. The cycle legs deliberately exercise
// the callgraph's resolution corners — a plain call, a generic helper
// (the instantiation must collapse to its Origin), and a method value
// passed as a callback (signature-matched against address-taken funcs).
package locks

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }
type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }
type I struct{ mu sync.Mutex }
type J struct{ mu sync.Mutex }

var (
	a A
	b B
	c C
	d D
	e E
	f F
	g G
	h H
	i I
	j J
)

// --- cycle 1: A <-> B, forward leg through a plain call, reverse leg
// through a generic helper.

// ForwardAB holds a and then acquires b through lockB.
func ForwardAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB() // WANT:lockorder
}

func lockB() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// withA is a generic helper acquiring a.mu; calls of it must resolve to
// this generic origin regardless of the instantiated type argument.
func withA[T any](x *A, fn func() T) T {
	x.mu.Lock()
	defer x.mu.Unlock()
	return fn()
}

// ReverseBA holds b and then acquires a through the generic helper.
func ReverseBA() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return withA(&a, func() int { return 1 })
}

// --- cycle 2: C <-> D entirely inline.

// InlineCD nests d inside c.
func InlineCD() {
	c.mu.Lock()
	d.mu.Lock() // WANT:lockorder
	d.mu.Unlock()
	c.mu.Unlock()
}

// InlineDC nests c inside d: the inversion.
func InlineDC() {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

// --- cycle 3: E <-> F, the forward leg routed through a method value
// used as a callback.

type worker struct{}

// lockF acquires f.mu; its method value below is the callback.
func (worker) lockF() {
	f.mu.Lock()
	f.mu.Unlock()
}

// invoke calls its callback; the callgraph resolves fn() by signature
// match against address-taken functions in this package.
func invoke(fn func()) { fn() }

// ForwardEF holds e and invokes the method value that locks f.
func ForwardEF() {
	e.mu.Lock()
	defer e.mu.Unlock()
	invoke(worker{}.lockF) // WANT:lockorder
}

// ReverseFE holds f then takes e directly.
func ReverseFE() {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// --- consistent pair: G before H everywhere; must NOT be flagged.

func BothGH() {
	g.mu.Lock()
	defer g.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
}

func AlsoGH() {
	g.mu.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	g.mu.Unlock()
}

// --- allowed pair: a real inversion suppressed by annotation, pinning
// that whole-program findings respect dcfvet:allow.

func AllowedIJ() {
	i.mu.Lock()
	defer i.mu.Unlock()
	j.mu.Lock() // dcfvet:allow lockorder=seeded: pins allow filtering for program analyzers
	j.mu.Unlock()
}

func AllowedJI() {
	j.mu.Lock()
	defer j.mu.Unlock()
	i.mu.Lock()
	i.mu.Unlock()
}
