// Package leaky seeds goroleak violations: goroutines parked forever on
// channel operations with no escape. The spawn shapes cover the loader
// edge cases — closures capturing enclosing locals, and a method value
// spawned directly by a go statement.
package leaky

import "context"

// RecvLeak spawns a closure that receives on a channel nothing closes.
func RecvLeak() {
	ch := make(chan int)
	go func() {
		<-ch // WANT:goroleak
	}()
	ch <- 1
}

// SelectLeak blocks in a select with no default and no escape case.
func SelectLeak(a, b chan int) {
	go func() {
		select { // WANT:goroleak
		case <-a:
		case <-b:
		}
	}()
}

// SendLeak spawns a send nothing ever receives.
func SendLeak() {
	ch := make(chan int)
	go func() {
		ch <- 1 // WANT:goroleak
	}()
}

// SendHandshake is the result-channel pattern: the spawner receives, so
// the spawned send escapes. Must NOT be flagged.
func SendHandshake() int {
	out := make(chan int)
	go func() { out <- 2 }()
	return <-out
}

// QuitSelect has a shutdown case: the conventional worker shape.
func QuitSelect(work chan int, quit chan struct{}) {
	go func() {
		for {
			select {
			case v := <-work:
				_ = v
			case <-quit:
				return
			}
		}
	}()
}

// CtxWorker escapes via ctx.Done().
func CtxWorker(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case v := <-work:
				_ = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// RangeClosed ranges over a channel its producer closes.
func RangeClosed() {
	jobs := make(chan int, 4)
	go func() {
		for v := range jobs {
			_ = v
		}
	}()
	jobs <- 1
	close(jobs)
}

type pump struct {
	in   chan int
	stop chan struct{}
}

// loop is spawned as a method; its shutdown channel is the escape.
func (p *pump) loop() {
	for {
		select {
		case v := <-p.in:
			_ = v
		case <-p.stop:
			return
		}
	}
}

// Start spawns the method — the callgraph resolves `go p.loop()` to the
// declared method body.
func (p *pump) Start() {
	go p.loop()
}
