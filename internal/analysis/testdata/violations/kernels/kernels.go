// Package kernels seeds freshforward violations: OpDef literals whose
// kernels claim input buffers without declaring Fresh outputs.
package kernels

// KernelContext mimics the real ops.KernelContext surface.
type KernelContext struct{ bufs []int }

// ForwardableInput mimics buffer-ownership transfer.
func (c *KernelContext) ForwardableInput(i int) int { return c.bufs[i] }

// OpDef mimics the real ops.OpDef surface.
type OpDef struct {
	Name   string
	Fresh  bool
	Kernel func(*KernelContext)
}

// reluKernel forwards directly.
func reluKernel(ctx *KernelContext) { _ = ctx.ForwardableInput(0) }

// negKernel forwards transitively through a helper.
func negKernel(ctx *KernelContext) { claim(ctx) }

func claim(ctx *KernelContext) { _ = ctx.ForwardableInput(0) }

var (
	// Direct forwarding via a func literal, no Fresh: flagged.
	badLit = OpDef{
		Name:   "relu_lit",
		Kernel: func(ctx *KernelContext) { _ = ctx.ForwardableInput(0) }, // WANT:freshforward
	}
	// Forwarding via a named kernel, no Fresh: flagged.
	badNamed = OpDef{
		Name:   "relu_named",
		Kernel: reluKernel, // WANT:freshforward
	}
	// Transitive forwarding through a helper, no Fresh: flagged.
	badTransitive = OpDef{
		Name:   "neg",
		Kernel: negKernel, // WANT:freshforward
	}
	// Forwarding with Fresh: true — the contract is honored, no finding.
	goodFresh = OpDef{
		Name:   "relu_ok",
		Fresh:  true,
		Kernel: reluKernel,
	}
	// No forwarding at all — Fresh is optional, no finding.
	goodPlain = OpDef{
		Name:   "add",
		Kernel: func(ctx *KernelContext) {},
	}
)

// use keeps the vars referenced.
func use() []OpDef { return []OpDef{badLit, badNamed, badTransitive, goodFresh, goodPlain} }
