// Package sleepy seeds testsleep violations in its test file.
package sleepy

// Ready reports readiness; tests poll it.
func Ready() bool { return true }
