package sleepy

import (
	"testing"
	"time"
)

func TestBareSleep(t *testing.T) {
	time.Sleep(10 * time.Millisecond) // WANT:testsleep
	if !Ready() {
		t.Fatal("not ready")
	}
}

func TestPollLoopIsFine(t *testing.T) {
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if Ready() {
			return
		}
		time.Sleep(time.Millisecond) // poll interval: not flagged
	}
	t.Fatal("never ready")
}

func TestAnnotatedSleepIsFine(t *testing.T) {
	time.Sleep(time.Millisecond) // dcfvet:allow testsleep=simulated work
}
