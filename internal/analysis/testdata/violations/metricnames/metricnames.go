// Package metricnames seeds metricname violations: instrument names that
// break the snake_case + unit-suffix convention. Registry stands in for
// the real internal/metrics registry — the analyzer resolves the receiver
// by named type, so the fixture module needs no metrics import.
package metricnames

// Registry mirrors the real registry's instrument constructors.
type Registry struct{}

func (r *Registry) Counter(name string) *Registry   { return r }
func (r *Registry) Gauge(name string) *Registry     { return r }
func (r *Registry) Histogram(name string) *Registry { return r }

// NotARegistry proves the analyzer keys on the receiver type, not the
// method name: its Counter calls are never flagged.
type NotARegistry struct{}

func (n *NotARegistry) Counter(name string) int { return 0 }

// Instruments exercises every rule.
func Instruments(r *Registry, dyn string) {
	r.Counter("steps_total")          // conventional counter: not flagged
	r.Gauge("queue_depth")            // conventional gauge: not flagged
	r.Histogram("step_duration_ns")   // conventional histogram: not flagged
	r.Counter("StepsTotal")           // WANT:metricname
	r.Counter("steps__done_total")    // WANT:metricname
	r.Counter("steps_done")           // WANT:metricname
	r.Counter("steps_done_ns")        // WANT:metricname
	r.Gauge("queue_total")            // WANT:metricname
	r.Histogram("latency")            // WANT:metricname
	r.Counter(dyn)                    // dynamic name: not checkable, not flagged
	r.Counter("allowed_weird_name")   // dcfvet:allow metricname=legacy dashboard key
	(&NotARegistry{}).Counter("Bad!") // wrong receiver type: not flagged
}
