// Package ctxapi seeds ctxthread violations: exported entry points that
// advertise or swallow cancellation incorrectly.
package ctxapi

import "context"

func run(ctx context.Context) error { return ctx.Err() }

// IgnoresCtx takes a ctx it never threads anywhere.
func IgnoresCtx(ctx context.Context, n int) int { // WANT:ctxthread
	return n * 2
}

// Orphan manufactures a context with no OrphanCtx escape hatch.
func Orphan() error {
	return run(context.Background()) // WANT:ctxthread
}

// Shim is the sanctioned convenience pattern: ShimCtx exists.
func Shim() error { return ShimCtx(context.Background()) }

// ShimCtx is the cancellation-aware variant.
func ShimCtx(ctx context.Context) error { return run(ctx) }

// Threads uses its ctx; no finding.
func Threads(ctx context.Context) error { return run(ctx) }
