package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GobSafe vets every value passed to a gob Encode/Decode call: gob
// *silently drops* unexported struct fields and errors at runtime on
// chan/func fields, so a wire envelope or checkpoint payload that grows a
// hazardous field ships corrupted state with no compile-time signal. The
// walk is recursive through named types, struct fields, slices, arrays,
// maps, and pointers; types that implement GobEncoder or BinaryMarshaler
// opt out (they control their own encoding).
var GobSafe = &Analyzer{
	Name: "gobsafe",
	Doc:  "types passed to gob Encode/Decode must survive the round trip: no unexported, chan, or func fields",
	Run:  runGobSafe,
}

func runGobSafe(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Encode" && sel.Sel.Name != "Decode") {
				return true
			}
			// The receiver must be a *gob.Encoder / *gob.Decoder.
			recv := info.Types[sel.X].Type
			if recv == nil || !isGobCodec(recv) {
				return true
			}
			argType := info.Types[call.Args[0]].Type
			if argType == nil {
				return true
			}
			w := &gobWalker{seen: map[types.Type]bool{}}
			w.walk(deref(argType), "")
			for _, p := range w.problems {
				pass.Reportf(call.Args[0].Pos(), "gob %s of %s: %s", sel.Sel.Name, types.TypeString(deref(argType), types.RelativeTo(pass.Pkg.Pkg)), p)
			}
			return true
		})
	}
}

func isGobCodec(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "encoding/gob" &&
		(obj.Name() == "Encoder" || obj.Name() == "Decoder")
}

type gobWalker struct {
	seen     map[types.Type]bool
	problems []string
}

func (w *gobWalker) walk(t types.Type, path string) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	// Types that define their own encoding are opaque to gob's reflection.
	if hasEncodingMethod(t) {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			fpath := joinPath(path, fld.Name())
			if !fld.Exported() {
				w.problems = append(w.problems,
					fmt.Sprintf("field %s is unexported; gob silently drops it (data loss on the wire)", fpath))
				continue
			}
			w.walk(deref(fld.Type()), fpath)
		}
	case *types.Slice:
		w.walk(deref(u.Elem()), path+"[]")
	case *types.Array:
		w.walk(deref(u.Elem()), path+"[]")
	case *types.Map:
		w.walk(deref(u.Key()), path+"{key}")
		w.walk(deref(u.Elem()), path+"{val}")
	case *types.Chan:
		w.problems = append(w.problems, fmt.Sprintf("%s is a channel; gob cannot encode it", pathOr(path, "value")))
	case *types.Signature:
		w.problems = append(w.problems, fmt.Sprintf("%s is a func; gob cannot encode it", pathOr(path, "value")))
	}
}

// hasEncodingMethod reports GobEncoder/GobDecoder or BinaryMarshaler/
// BinaryUnmarshaler implementations (on T or *T).
func hasEncodingMethod(t types.Type) bool {
	for _, name := range []string{"GobEncode", "GobDecode", "MarshalBinary", "UnmarshalBinary"} {
		if m, _, _ := types.LookupFieldOrMethod(t, true, nil, name); m != nil {
			if _, ok := m.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

func joinPath(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}

func pathOr(path, def string) string {
	if path == "" {
		return def
	}
	return path
}
