package analysis

import (
	"go/ast"
)

// FreshForward enforces the executor's buffer-ownership contract (see
// internal/exec/README.md): a kernel that claims an input buffer through
// KernelContext.ForwardableInput may only be installed in an OpDef that
// sets Fresh: true. Fresh is what tells the executor the kernel's outputs
// are exclusively owned, so the recycling pool may reclaim them; a
// forwarding kernel without it silently disables forwarding, and — worse —
// a future refactor that flips the default would alias a shared buffer.
var FreshForward = &Analyzer{
	Name: "freshforward",
	Doc:  "OpDef literals whose Kernel (transitively) calls ForwardableInput must set Fresh: true",
	Run:  runFreshForward,
}

func runFreshForward(pass *Pass) {
	// Step 1: which package-level functions (transitively) call
	// ForwardableInput? Seed with direct callers, then propagate over the
	// package-local static call graph to a fixpoint.
	forwards := map[string]bool{} // function name -> calls ForwardableInput
	calls := map[string][]string{}
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			decls[fd.Name.Name] = fd
			if callsForwardable(fd.Body) {
				forwards[fd.Name.Name] = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						calls[fd.Name.Name] = append(calls[fd.Name.Name], id.Name)
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if forwards[fn] {
				continue
			}
			for _, callee := range callees {
				if forwards[callee] {
					forwards[fn] = true
					changed = true
					break
				}
			}
		}
	}

	// Step 2: every OpDef composite literal whose Kernel forwards must
	// carry Fresh: true.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isOpDefLit(lit) {
				return true
			}
			var kernelForwards bool
			var fresh bool
			var kernelPos ast.Node
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Fresh":
					if id, ok := kv.Value.(*ast.Ident); ok && id.Name == "true" {
						fresh = true
					}
				case "Kernel":
					kernelPos = kv.Value
					switch v := kv.Value.(type) {
					case *ast.FuncLit:
						kernelForwards = callsForwardable(v.Body) || callsAnyOf(v.Body, forwards)
					case *ast.Ident:
						kernelForwards = forwards[v.Name]
					}
				}
			}
			if kernelForwards && !fresh {
				pos := lit.Pos()
				if kernelPos != nil {
					pos = kernelPos.Pos()
				}
				pass.Reportf(pos, "kernel calls ForwardableInput but its OpDef does not set Fresh: true; the executor will not grant buffer ownership (see internal/exec/README.md)")
			}
			return true
		})
	}
}

// callsForwardable reports a syntactic ".ForwardableInput(" call anywhere
// under n. The method exists only on *ops.KernelContext, so a name match
// is precise enough in practice and keeps the check type-load independent.
func callsForwardable(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "ForwardableInput" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// callsAnyOf reports whether any function in set is called under n.
func callsAnyOf(n ast.Node, set map[string]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && set[id.Name] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// isOpDefLit matches OpDef{...} and ops.OpDef{...} composite literals.
func isOpDefLit(lit *ast.CompositeLit) bool {
	switch t := lit.Type.(type) {
	case *ast.Ident:
		return t.Name == "OpDef"
	case *ast.SelectorExpr:
		return t.Sel.Name == "OpDef"
	}
	return false
}
