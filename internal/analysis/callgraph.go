// Whole-program layer: a conservative static callgraph over every loaded
// unit. Units typecheck independently against export data, so type
// identity does NOT hold across them — a *types.Named seen while checking
// package A is a different object from "the same" type seen from package
// B. Everything cross-unit therefore keys on strings: functions by
// types.Func.FullName(), methods and func values by package-path-qualified
// signature strings, func literals by file:offset.
//
// Resolution rules, most precise first:
//
//   - direct calls (ident or selector naming a *types.Func) -> that
//     function; generic instantiations collapse to their Origin
//   - interface method calls -> class-hierarchy analysis: every concrete
//     method with the same name and receiver-stripped signature string
//   - calls through func-typed values (params, fields, variables) -> every
//     address-taken function or literal in the SAME package with a
//     matching signature string (cross-package func values are dropped;
//     see the README's soundness notes)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Function is one function body known to the Program: a declared function
// or method, or a function literal.
type Function struct {
	Key      string // FullName for declarations, "lit:<file>:<offset>" for literals
	Pkg      *Package
	Decl     *ast.FuncDecl // nil for literals
	Lit      *ast.FuncLit  // nil for declarations
	Sig      *types.Signature
	Summary  *Summary
	testFile bool
}

// Body returns the function's statement body (never nil for Program
// functions; bodiless declarations are not collected).
func (f *Function) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Pos is the function's declaration position.
func (f *Function) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Name is a short human-readable label for diagnostics: the FullName with
// the module prefix trimmed, or "func literal at file:line".
func (f *Function) Name() string {
	if f.Decl != nil {
		return trimModule(f.Key)
	}
	p := f.Pkg.Fset.Position(f.Lit.Pos())
	return fmt.Sprintf("func literal at %s:%d", shortFile(p.Filename), p.Line)
}

// Program is the whole-program view shared by every RunProgram analyzer:
// all functions with bodies, the indexes call resolution needs, and the
// per-function effect summaries.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*Function
	Order []*Function // deterministic iteration order (package, file, position)

	// methodsBySig: "MethodName|<sig>" -> concrete methods, for CHA over
	// interface calls.
	methodsBySig map[string][]*Function
	// addrTaken: "<pkgpath>|<sig>" -> functions whose address escapes in
	// that package (func refs outside call position, uncalled literals,
	// method values), for resolving calls through func-typed values.
	addrTaken map[string][]*Function

	// closes / recvs: channel key -> functions that close / receive on it.
	// closes excludes _test.go functions so test-only teardown cannot
	// manufacture findings in production code; recvs includes everything
	// because receives are only ever used as escape evidence.
	closes map[string][]*Function
	recvs  map[string][]*Function
}

// BuildProgram collects every function body in the loaded packages and
// builds the callgraph indexes and effect summaries. It is pure analysis
// over already-typechecked units — no re-parsing, no process spawning.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:         pkgs,
		Funcs:        map[string]*Function{},
		methodsBySig: map[string][]*Function{},
		addrTaken:    map[string][]*Function{},
		closes:       map[string][]*Function{},
		recvs:        map[string][]*Function{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			test := isTestFile(pkg.Fset, f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				sig, _ := obj.Type().(*types.Signature)
				prog.add(&Function{
					Key: obj.FullName(), Pkg: pkg, Decl: fd, Sig: sig, testFile: test,
				})
			}
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				var sig *types.Signature
				if tv, ok := pkg.Info.Types[lit]; ok && tv.Type != nil {
					sig, _ = tv.Type.Underlying().(*types.Signature)
				}
				prog.add(&Function{
					Key: litKey(pkg, lit), Pkg: pkg, Lit: lit, Sig: sig, testFile: test,
				})
				return true
			})
		}
	}
	for _, fn := range prog.Order {
		if fn.Decl != nil && fn.Decl.Recv != nil && fn.Sig != nil {
			k := fn.Decl.Name.Name + "|" + sigKey(fn.Sig)
			prog.methodsBySig[k] = append(prog.methodsBySig[k], fn)
		}
	}
	for _, pkg := range pkgs {
		prog.collectAddrTaken(pkg)
	}
	buildSummaries(prog)
	return prog
}

// add registers fn, de-duplicating colliding keys (multiple init funcs,
// blank-named funcs) with a deterministic suffix.
func (prog *Program) add(fn *Function) {
	key := fn.Key
	for i := 2; prog.Funcs[key] != nil; i++ {
		key = fmt.Sprintf("%s#%d", fn.Key, i)
	}
	fn.Key = key
	prog.Funcs[key] = fn
	prog.Order = append(prog.Order, fn)
}

func litKey(pkg *Package, lit *ast.FuncLit) string {
	p := pkg.Fset.Position(lit.Pos())
	return fmt.Sprintf("lit:%s:%d", p.Filename, p.Offset)
}

func (prog *Program) litFunc(pkg *Package, lit *ast.FuncLit) *Function {
	return prog.Funcs[litKey(pkg, lit)]
}

// pathQual qualifies type names with full package paths so rendered types
// compare equal across independently typechecked units.
func pathQual(p *types.Package) string { return p.Path() }

// sigKey renders a signature's parameters and results (receiver excluded)
// with package-path qualification: the cross-unit identity for "these two
// functions are call-compatible".
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			b.WriteString("...")
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), pathQual))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), pathQual))
	}
	b.WriteByte(')')
	return b.String()
}

// collectAddrTaken indexes functions whose address escapes in pkg: any
// reference to a declared function outside call position (including method
// values used as callbacks) and any func literal that is not invoked on
// the spot.
func (prog *Program) collectAddrTaken(pkg *Package) {
	seen := map[string]bool{} // "<sig>|<fnKey>" dedupe
	note := func(sig string, fn *Function) {
		k := pkg.Path + "|" + sig
		if fn == nil || seen[k+"|"+fn.Key] {
			return
		}
		seen[k+"|"+fn.Key] = true
		prog.addrTaken[k] = append(prog.addrTaken[k], fn)
	}
	for _, f := range pkg.Files {
		// Expressions in call position: the Fun of every call, plus the
		// selector's Sel ident (so `pkg.F()` / `x.M()` don't count as
		// address-taking F / M).
		called := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				fun := ast.Unparen(c.Fun)
				called[fun] = true
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					called[sel.Sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				if called[e] {
					return true
				}
				fn := prog.litFunc(pkg, e)
				if fn != nil && fn.Sig != nil {
					note(sigKey(fn.Sig), fn)
				}
			case *ast.Ident:
				if called[e] {
					return true
				}
				obj, ok := pkg.Info.Uses[e].(*types.Func)
				if !ok {
					return true
				}
				orig := obj.Origin()
				if fn := prog.Funcs[orig.FullName()]; fn != nil {
					if sig, ok := orig.Type().(*types.Signature); ok {
						note(sigKey(sig), fn)
					}
				}
			}
			return true
		})
	}
}

// Callees resolves a call expression to the Program functions it may
// invoke. Unresolvable calls (stdlib, externals, unknown func values)
// return nil — the callgraph silently under-approximates there, which the
// analyzers treat as "no effects".
func (prog *Program) Callees(pkg *Package, call *ast.CallExpr) []*Function {
	fun := ast.Unparen(call.Fun)
	// Conversions are not calls: `http.HandlerFunc(f)` invokes nothing.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch e := fun.(type) {
	case *ast.FuncLit:
		if fn := prog.litFunc(pkg, e); fn != nil {
			return []*Function{fn}
		}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[e].(type) {
		case *types.Func:
			if fn := prog.Funcs[obj.Origin().FullName()]; fn != nil {
				return []*Function{fn}
			}
		case *types.Var:
			return prog.valueCallees(pkg, obj.Type())
		}
	case *ast.SelectorExpr:
		if selInfo, ok := pkg.Info.Selections[e]; ok {
			switch selInfo.Kind() {
			case types.MethodVal:
				m, _ := selInfo.Obj().(*types.Func)
				if m == nil {
					return nil
				}
				orig := m.Origin()
				if types.IsInterface(deref(selInfo.Recv())) {
					sig, _ := orig.Type().(*types.Signature)
					if sig == nil {
						return nil
					}
					return prog.methodsBySig[orig.Name()+"|"+sigKey(sig)]
				}
				if fn := prog.Funcs[orig.FullName()]; fn != nil {
					return []*Function{fn}
				}
			case types.FieldVal:
				return prog.valueCallees(pkg, selInfo.Type())
			}
			return nil
		}
		// No selection entry: qualified reference (otherpkg.F, otherpkg.V).
		switch obj := pkg.Info.Uses[e.Sel].(type) {
		case *types.Func:
			if fn := prog.Funcs[obj.Origin().FullName()]; fn != nil {
				return []*Function{fn}
			}
		case *types.Var:
			return prog.valueCallees(pkg, obj.Type())
		}
	}
	return nil
}

// valueCallees resolves a call through a func-typed value: every
// address-taken function of matching signature in the calling package.
func (prog *Program) valueCallees(pkg *Package, t types.Type) []*Function {
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return prog.addrTaken[pkg.Path+"|"+sigKey(sig)]
}

// trimModule drops the module path prefix from a function or lock key for
// display.
func trimModule(s string) string {
	s = strings.ReplaceAll(s, "repro/", "")
	return s
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
