// Package loading without golang.org/x/tools: `go list -export` names the
// gc export data for every dependency in the build cache, and the stdlib
// importer reads it, so full typechecking needs nothing beyond the
// toolchain that built the code. Each module package becomes one analysis
// unit containing its compiled files plus in-package tests; external test
// packages (package foo_test) form a second unit whose import of the
// package under test resolves to the test-variant export.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one typechecked analysis unit.
type Package struct {
	Path  string // import path ("repro/internal/exec", or "...:xtest")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors collects (non-fatal) typechecking problems; analyzers run
	// regardless, on the theory that dcfvet executes after `go build`
	// already proved the code compiles.
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath    string
	Name          string
	Dir           string
	Export        string
	GoFiles       []string
	TestGoFiles   []string
	XTestGoFiles  []string
	ForTest       string
	Standard      bool
	Incomplete    bool
	DepOnly       bool
	Module        *struct{ Path string }
	InvalidGoFile string
}

// Load typechecks the packages matched by patterns (e.g. "./...") rooted
// at dir, returning one Package per compilation unit (in-package tests are
// merged into their package; external _test packages are separate units).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path (incl. variants) -> export file
	var targets []listEntry        // module packages to analyze
	seen := map[string]bool{}
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: parsing go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		// Analysis targets: plain (non-variant, non-.test-binary) packages
		// of this module. go list -deps -test emits each of those once per
		// role; dedupe by import path.
		if e.Standard || e.ForTest != "" || strings.HasSuffix(e.ImportPath, ".test") ||
			strings.Contains(e.ImportPath, " [") || e.Module == nil || seen[e.ImportPath] {
			continue
		}
		seen[e.ImportPath] = true
		targets = append(targets, e)
	}

	var pkgs []*Package
	for _, e := range targets {
		// Unit 1: compiled files + in-package tests.
		files := append(append([]string{}, e.GoFiles...), e.TestGoFiles...)
		if len(files) > 0 {
			p, err := typecheckUnit(e.ImportPath, e.Dir, files, exports, "")
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
		// Unit 2: the external test package, if any. Its import of the
		// package under test must see test-only symbols, which live in the
		// test-variant export "<path> [<path>.test]".
		if len(e.XTestGoFiles) > 0 {
			p, err := typecheckUnit(e.ImportPath+":xtest", e.Dir, e.XTestGoFiles, exports, e.ImportPath)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

func typecheckUnit(unitPath, dir string, fileNames []string, exports map[string]string, underTest string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if path == underTest {
			if v, ok := exports[path+" ["+path+".test]"]; ok {
				return os.Open(v)
			}
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	p := &Package{Path: unitPath, Dir: dir, Fset: fset, Files: files}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	// Errors are collected, not fatal: Check returns a partial package.
	p.Pkg, _ = conf.Check(strings.TrimSuffix(unitPath, ":xtest"), fset, files, p.Info)
	return p, nil
}
