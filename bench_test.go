package repro

// One benchmark per table and figure of the paper's evaluation (§6), plus
// the ablations DESIGN.md calls out. Each wraps the corresponding driver in
// internal/bench at reduced ("quick") scale; cmd/dcfbench runs the full
// sweeps and prints the paper-style tables.

import (
	"context"
	"testing"

	"repro/internal/bench"
)

// BenchmarkFig11DistributedLoop regenerates Figure 11: iteration rate of a
// while-loop distributed across simulated machines, barrier vs no-barrier.
func BenchmarkFig11DistributedLoop(b *testing.B) {
	cfg := bench.DefaultFig11(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.NoBarrierIPS, "no-barrier-iters/s")
			b.ReportMetric(last.BarrierIPS, "barrier-iters/s")
		}
	}
}

// BenchmarkFig12ParallelIterations regenerates Figure 12: the effect of the
// parallel-iterations window on an 8-GPU pipelined loop. The serial point
// (window=1) is also the §6.1 out-of-graph-equivalent baseline.
func BenchmarkFig12ParallelIterations(b *testing.B) {
	cfg := bench.DefaultFig12(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].SpeedupVsSerial, "pipeline-speedup-x")
		}
	}
}

// BenchmarkTable1MemorySwap regenerates Table 1: LSTM training time per
// loop iteration by sequence length, swapping disabled (OOM past the
// boundary) vs enabled.
func BenchmarkTable1MemorySwap(b *testing.B) {
	cfg := bench.DefaultTable1(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].EnabledMs, "swap-ms/iter")
		}
	}
}

// BenchmarkFig13StreamOverlap regenerates Figure 13's measurement: the
// compute stream overlapping the DtoH copy stream during a swap-enabled
// training step.
func BenchmarkFig13StreamOverlap(b *testing.B) {
	cfg := bench.DefaultTable1(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig13(cfg, 60, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.OverlapD2H.Microseconds()), "overlap-us")
		}
	}
}

// BenchmarkFig14DynamicVsStatic regenerates Figure 14: dynamic control flow
// vs static unrolling across batch sizes.
func BenchmarkFig14DynamicVsStatic(b *testing.B) {
	cfg := bench.DefaultFig14(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig14(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].SlowdownPct, "dynamic-slowdown-%")
		}
	}
}

// BenchmarkFig15ModelParallelism regenerates Figure 15: 8-layer LSTM
// speedup across simulated GPUs (training step including gradients).
func BenchmarkFig15ModelParallelism(b *testing.B) {
	cfg := bench.DefaultFig15(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig15(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "model-parallel-speedup-x")
		}
	}
}

// BenchmarkDQNInGraphVsOutOfGraph regenerates §6.5: the in-graph DQN
// against the client-driven baseline.
func BenchmarkDQNInGraphVsOutOfGraph(b *testing.B) {
	cfg := bench.DefaultDQN(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.DQN(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SpeedupPct, "in-graph-speedup-%")
		}
	}
}

// BenchmarkAblationDeadnessPropagation measures the cost of dead-token
// propagation on an untaken branch as it grows (§4.4 motivation for the
// broadcast optimization).
func BenchmarkAblationDeadnessPropagation(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationDeadness(128, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTagEncoding measures per-op dispatch cost of the tagged-
// token executor on a control-flow-free chain (the fixed overhead behind
// Figure 14's 3–8%).
func BenchmarkAblationTagEncoding(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationTagOverhead(256, 5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStackSwap isolates the stack push/pop swapping cost from
// Table 1's end-to-end view.
func BenchmarkAblationStackSwap(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationStackSwap(16, 48, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchServe measures the adaptive request batcher (dcf.Server)
// against the unbatched shared-Callable baseline at the sweep's top
// concurrency, reporting the batched-vs-unbatched speedup.
func BenchmarkBatchServe(b *testing.B) {
	cfg := bench.DefaultBatchServe(true, 16, 16, 0)
	cfg.OpenLoopSeconds = 0 // keep the benchmark's inner loop closed-form
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.BatchServe(context.Background(), cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res.Rows) > 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.BatchedRPS, "batched-req/s")
			b.ReportMetric(last.Speedup, "speedup-x")
		}
	}
}
