// Quickstart: build a dataflow graph with an in-graph while-loop, run it,
// differentiate through it, and train a parameter with SGD — the core
// workflow of the paper's programming model (§2.1, §5.1).
package main

import (
	"fmt"
	"log"

	"repro/dcf"
)

func main() {
	g := dcf.NewGraph()

	// A trainable 2x2 matrix and an input placeholder.
	w := g.Variable("w", dcf.RandNormal(1, 0, 0.4, 2, 2))
	x := g.Placeholder("x")

	// a := x; for i := 0; i < 5; i++ { a = tanh(a @ w) }
	// The loop compiles to Switch/Merge/Enter/Exit/NextIteration and its
	// iterations may pipeline (§4).
	outs := g.While(
		[]dcf.Tensor{g.Scalar(0), x},
		func(v []dcf.Tensor) dcf.Tensor { return v[0].Less(g.Scalar(5)) },
		func(v []dcf.Tensor) []dcf.Tensor {
			return []dcf.Tensor{v[0].Add(g.Scalar(1)), v[1].MatMul(w).Tanh()}
		},
		dcf.WhileOpts{},
	)
	result := outs[1]

	// Train w so the loop's output matches a target — backprop through
	// the loop runs a gradient loop in reverse, restoring intermediates
	// from stacks (§5.1).
	target := g.Const(dcf.FromFloats([]float64{0.5, -0.25, 0.25, -0.5}, 2, 2))
	loss := result.Sub(target).Square().ReduceSum()
	grads := g.MustGradients(loss, w)
	step := g.ApplySGD("w", grads[0], g.Scalar(0.2))

	sess := dcf.NewSession(g)
	if err := sess.InitVariables(); err != nil {
		log.Fatal(err)
	}
	feeds := dcf.Feeds{"x": dcf.FromFloats([]float64{1, 0, 0, 1}, 2, 2)}

	before, err := sess.Run1(feeds, loss)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := sess.RunTargets(feeds, step); err != nil {
			log.Fatal(err)
		}
	}
	after, err := sess.Run1(feeds, loss)
	if err != nil {
		log.Fatal(err)
	}
	final, err := sess.Run1(feeds, result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss before training: %.4f\n", before.ScalarValue())
	fmt.Printf("loss after  training: %.4f\n", after.ScalarValue())
	fmt.Printf("loop output after training: %v\n", final)
}
