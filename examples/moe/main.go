// Mixture-of-experts example: conditional computation via in-graph
// conditionals (§2.2). A gating network selects one expert; only the
// selected expert's subgraph executes — the untaken experts' ops run as
// cheap dead-token propagation, never their matmuls. Gradients flow through
// the conditional structure (gradient of cond is a cond, §5.1).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dcf"
	"repro/internal/nn"
)

func main() {
	g := dcf.NewGraph()
	const in, out, experts, batch = 6, 3, 4, 8

	moe := nn.NewMoE(g, "moe", in, out, experts, 11)
	x := g.Placeholder("x")
	target := g.Placeholder("y")
	pred := moe.Apply(x)
	loss := nn.MSE(pred, target)
	step, err := nn.SGDStep(g, loss, &moe.Vars, 0.2, false)
	if err != nil {
		log.Fatal(err)
	}

	sess := dcf.NewSession(g)
	if err := sess.InitVariables(); err != nil {
		log.Fatal(err)
	}

	feeds := dcf.Feeds{
		"x": dcf.RandNormal(3, 0, 1, batch, in),
		"y": dcf.RandNormal(4, 0, 0.5, batch, out),
	}
	ctx := context.Background()
	firstOut, md, err := sess.RunCtx(ctx, dcf.RunOptions{Feeds: feeds, Fetches: []dcf.Tensor{loss}})
	if err != nil {
		log.Fatal(err)
	}
	first := firstOut[0]
	fmt.Printf("%d experts, %d executions in the forward step (conditional computation)\n",
		experts, md.Stats.NodesExecuted)
	// The training loop is the hot path: compile its signature once.
	trainStep, err := sess.MakeCallable(dcf.CallableSpec{
		Feeds:   []string{"x", "y"},
		Targets: []dcf.Op{step},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := trainStep.Call(ctx, feeds["x"], feeds["y"]); err != nil {
			log.Fatal(err)
		}
	}
	last, err := sess.Run1(feeds, loss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training: loss %.4f -> %.4f over 60 steps\n", first.ScalarValue(), last.ScalarValue())

	// Show the gate's routing decision on two different inputs.
	scores := moe.Gate.Apply(x).Softmax().ReduceMean([]int{0}, false)
	for seed := uint64(5); seed < 7; seed++ {
		s, err := sess.Run1(dcf.Feeds{"x": dcf.RandNormal(seed, 0, 2, batch, in)}, scores.ArgMax(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("input %d routes to expert %d\n", seed-5, s.ScalarIntValue())
	}
}
