// Example tcpcluster: the multi-process cluster runtime end to end in one
// binary. Three worker daemons come up on loopback TCP (in a production
// deployment each would be its own `dcfworker` process on its own machine),
// a driver dials them, registers a partitioned while-loop whose body hops
// across every worker, and runs 20 steps — each in a private rendezvous
// scope — then cancels a step mid-flight to show the failure model: the
// canceled step dies, the cluster survives.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/distrib"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Worker daemons: generic processes that know nothing about the graph.
	names := []string{"alpha", "beta", "gamma"}
	var addrs []string
	for _, n := range names {
		w, err := cluster.NewWorker(n, "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer w.Close()
		addrs = append(addrs, w.Addr())
		fmt.Printf("worker %s up: control %s, data %s\n", n, w.Addr(), w.DataAddr())
	}

	// Driver: dial the fleet, build the loop, register, step.
	fleet, err := distrib.Dial(addrs...)
	if err != nil {
		return err
	}
	defer fleet.Close()
	workers := fleet.Workers()
	fmt.Printf("fleet: %v\n", workers)

	// The canonical hop loop: each iteration threads the counter through
	// every worker (one Send/Recv hop apiece) and the result equals the
	// fed trip count.
	b, outs := cluster.BuildHopLoop(workers)
	tc, err := fleet.NewCluster(b, outs, nil, distrib.TCPOptions{})
	if err != nil {
		return err
	}
	defer tc.Close()

	for s := 1; s <= 20; s++ {
		vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(float64(s))})
		if err != nil {
			return fmt.Errorf("step %d: %w", s, err)
		}
		fmt.Printf("step %2d: loop ran %v iterations\n", s, vals[0].ScalarValue())
	}

	// Cancellation: the driver's context fans out to every worker as an
	// abort; blocked Recvs drain, the step fails, the next one succeeds.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = tc.RunCtx(ctx, map[string]*tensor.Tensor{"limit": tensor.Scalar(1e12)})
	fmt.Printf("canceled step: %v\n", err)
	vals, err := tc.Run(map[string]*tensor.Tensor{"limit": tensor.Scalar(3)})
	if err != nil {
		return fmt.Errorf("step after cancel: %w", err)
	}
	fmt.Printf("next step after cancel: %v iterations — cluster survives\n", vals[0].ScalarValue())
	return nil
}
