// Sequence-to-sequence example, the paper's motivating §2.2 workload: an
// encoder RNN consumes a variable-length input sequence; a decoder RNN then
// *generates* until it emits the end-of-sequence token — a loop whose trip
// count depends on data computed inside the loop, which is exactly what
// in-graph dynamic control flow exists for. (Static unrolling cannot
// express "decode until EOS".)
//
// The toy task is sequence reversal over a small vocabulary; greedy
// decoding drives the termination condition.
package main

import (
	"fmt"
	"log"

	"repro/dcf"
	"repro/internal/nn"
)

const (
	vocab  = 8 // token 0 = EOS
	embDim = 12
	units  = 24
	maxLen = 12
)

func main() {
	g := dcf.NewGraph()
	emb := nn.NewEmbedding(g, "emb", vocab, embDim, 3)
	enc := nn.NewLSTMCell(g, "enc", embDim, units, 5)
	dec := nn.NewLSTMCell(g, "dec", embDim, units, 7)
	out := nn.NewDense(g, "proj", units, vocab, nil, 9)

	vars := &nn.VarSet{}
	for _, v := range []*nn.VarSet{&emb.Vars, &enc.Vars, &dec.Vars, &out.Vars} {
		vars.Merge(v)
	}

	// ---- Encoder: variable-length input [T] of token ids. ----
	src := g.Placeholder("src")
	srcEmb := emb.Lookup(src).ExpandDims(1) // [T, 1, embDim] (batch 1)
	h0 := g.Const(dcf.Zeros(1, units))
	c0 := g.Const(dcf.Zeros(1, units))
	encRes := nn.DynamicRNN(g, enc, srcEmb, h0, c0, dcf.WhileOpts{Name: "encoder"})

	// ---- Greedy decoder: loop until EOS or maxLen. The predicate
	// depends on the previous iteration's *generated token* — a
	// data-dependent trip count (§2.2). ----
	eos := g.Int(0)
	outTA := g.TensorArray(g.Int(maxLen))
	decOuts := g.While(
		[]dcf.Tensor{
			g.Int(0),                      // step
			eos,                           // previous token (start = EOS as <go>)
			encRes.FinalH,                 // decoder h
			encRes.FinalC,                 // decoder c
			outTA.Flow(),                  // output array flow
			g.Const(dcf.ScalarBool(true)), // continue flag
		},
		func(v []dcf.Tensor) dcf.Tensor {
			return v[0].Less(g.Int(maxLen)).And(v[5])
		},
		func(v []dcf.Tensor) []dcf.Tensor {
			step, prev, h, c, flow := v[0], v[1], v[2], v[3], v[4]
			x := emb.Lookup(prev.Reshape(1))
			nh, nc := dec.Step(x, h, c)
			logits := out.Apply(nh) // [1, vocab]
			tok := logits.ArgMax(1) // [1]
			w := outTA.WithFlow(flow).Write(step, tok)
			keepGoing := tok.Reshape().NotEqual(eos)
			return []dcf.Tensor{
				step.Add(g.Int(1)), tok.Reshape(), nh, nc, w.Flow(), keepGoing,
			}
		},
		dcf.WhileOpts{Name: "decoder"},
	)
	decodedLen := decOuts[0]

	// ---- Training objective: teacher-forced reversal with EOS. The
	// decoder input at step t is the previous target token (<go>=EOS at
	// t=0); the label at step t is the target token, ending in EOS so
	// the model learns when to stop. ----
	decIn := g.Placeholder("dec_in")    // [T+1] shifted target ids
	labelIDs := g.Placeholder("labels") // [T+1] target ids ending in EOS
	decEmb := emb.Lookup(decIn).ExpandDims(1)
	decRes := nn.DynamicRNN(g, dec, decEmb, encRes.FinalH, encRes.FinalC, dcf.WhileOpts{Name: "teacher"})
	logits := decRes.Outputs.Reshape(-1, units).MatMul(out.W).Add(out.B)
	labels := labelIDs.OneHot(vocab)
	loss := nn.SoftmaxCrossEntropy(logits, labels)
	step, err := nn.SGDStep(g, loss, vars, 0.5, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Err(); err != nil {
		log.Fatal(err)
	}

	sess := dcf.NewSession(g)
	if err := sess.InitVariables(); err != nil {
		log.Fatal(err)
	}

	srcSeq := dcf.FromInts([]int64{3, 1, 4, 1, 5}, 5)
	// Reversed target with <go> prefix and EOS suffix.
	decInSeq := dcf.FromInts([]int64{0, 5, 1, 4, 1, 3}, 6)
	labelSeq := dcf.FromInts([]int64{5, 1, 4, 1, 3, 0}, 6)
	feeds := dcf.Feeds{"src": srcSeq, "dec_in": decInSeq, "labels": labelSeq}

	first, err := sess.Run1(feeds, loss)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if err := sess.RunTargets(feeds, step); err != nil {
			log.Fatal(err)
		}
	}
	last, err := sess.Run1(feeds, loss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teacher-forced loss: %.4f -> %.4f over 150 steps\n",
		first.ScalarValue(), last.ScalarValue())

	// Greedy decode: the loop stops on EOS or maxLen — the number of
	// iterations is decided by the model's own outputs, inside the graph.
	n, err := sess.Run1(dcf.Feeds{"src": srcSeq}, decodedLen.Cast(dcf.Float))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy decoder ran %v steps (data-dependent trip count; max %d)\n",
		n.ScalarValue(), maxLen)
	if int(n.ScalarValue()) < maxLen {
		fmt.Println("the loop terminated because the model emitted EOS — a decision made inside the graph")
	}
}
