// Dynamic RNN example: one graph handles sequences of any length (the
// motivating workload of §2.2 — encoder-style processing of variable-length
// inputs), and training backpropagates through the loop with stack-saved
// state (§5.1). Static unrolling, by contrast, fixes the length at graph
// construction.
package main

import (
	"fmt"
	"log"

	"repro/dcf"
	"repro/internal/nn"
)

const (
	batch = 4
	inDim = 8
	units = 16
)

func main() {
	g := dcf.NewGraph()
	cell := nn.NewLSTMCell(g, "lstm", inDim, units, 7)
	x := g.Placeholder("x") // [T, batch, inDim] — T is dynamic
	y := g.Placeholder("y") // [batch, units] target for the final state

	h0 := g.Const(dcf.Zeros(batch, units))
	c0 := g.Const(dcf.Zeros(batch, units))
	r := nn.DynamicRNN(g, cell, x, h0, c0, dcf.WhileOpts{})
	loss := nn.MSE(r.FinalH, y)
	step, err := nn.SGDStep(g, loss, &cell.Vars, 0.1, false)
	if err != nil {
		log.Fatal(err)
	}

	sess := dcf.NewSession(g)
	if err := sess.InitVariables(); err != nil {
		log.Fatal(err)
	}

	// The same graph processes three different sequence lengths.
	fmt.Println("one graph, variable sequence lengths:")
	for _, T := range []int{3, 9, 27} {
		out, err := sess.Run1(dcf.Feeds{"x": dcf.RandNormal(uint64(T), 0, 1, T, batch, inDim)}, r.Outputs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  T=%2d -> outputs shape %v\n", T, out.Shape())
	}

	// Train on a fixed batch; loss must fall.
	feeds := dcf.Feeds{
		"x": dcf.RandNormal(1, 0, 1, 12, batch, inDim),
		"y": dcf.RandNormal(2, 0, 0.3, batch, units),
	}
	first, err := sess.Run1(feeds, loss)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sess.RunTargets(feeds, step); err != nil {
			log.Fatal(err)
		}
	}
	last, err := sess.Run1(feeds, loss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training: loss %.4f -> %.4f over 40 steps\n", first.ScalarValue(), last.ScalarValue())
}
