// Serving example: an HTTP model server over one shared Session and one
// batched dcf.Server — the paper's §3 deployment shape (a multi-tenant
// server driving one graph with many concurrent steps), with adaptive
// request batching coalescing concurrent predictions into single batched
// executor steps.
//
// Every request handler calls the same Server from its own goroutine; the
// batcher stacks concurrent requests' feeds along axis 0, runs one step,
// and slices the scores back per request. r.Context() threads each
// client's disconnect/deadline into the batcher, so an abandoned request
// is dropped from its micro-batch without disturbing its neighbors.
//
// The HTTP server itself is hardened the way a production front end must
// be: header/write timeouts against slowloris clients, and signal-driven
// graceful shutdown that drains in-flight requests and then the batcher.
// (cmd/dcfserve is the full production server — checkpoint restore,
// /healthz, expvar metrics; this example keeps the whole loop self-driving
// and small.)
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/dcf"
)

const dim = 16

// buildModel compiles score = softmax(tanh(x @ W1) @ W2) for [batch,dim]
// inputs into a batched Server. In a real server the weights would come
// from a checkpoint (Session.RestoreVariables — see cmd/dcfserve).
func buildModel() (*dcf.Server, error) {
	g := dcf.NewGraph()
	x := g.PlaceholderTyped("x", dcf.Float, -1, dim)
	w1 := g.Const(dcf.GlorotUniform(1, dim, dim))
	w2 := g.Const(dcf.GlorotUniform(2, dim, 4))
	scores := x.MatMul(w1).Tanh().MatMul(w2).Softmax()
	if err := g.Err(); err != nil {
		return nil, err
	}
	sess := dcf.NewSession(g)
	return dcf.NewServer(sess, dcf.CallableSpec{
		Feeds:   []string{"x"},
		Fetches: []dcf.Tensor{scores},
	}, dcf.BatchOptions{
		MaxBatchSize:  32,
		MaxQueueDelay: 2 * time.Millisecond,
	})
}

// predictHandler decodes {"x": [..16 floats..]}, rides the shared batched
// Server under the request's context, and replies with the class scores.
func predictHandler(model *dcf.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			X []float64 `json:"x"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.X) != dim {
			http.Error(w, fmt.Sprintf("want {\"x\": [%d floats]}", dim), http.StatusBadRequest)
			return
		}
		out, err := model.Predict(r.Context(), dcf.FromFloats(req.X, 1, dim))
		if err != nil {
			// A canceled r.Context() lands here: the request was dropped
			// from its micro-batch; its batch-mates were unaffected.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"scores": out[0].F})
	}
}

func main() {
	model, err := buildModel()
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", predictHandler(model))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler: mux,
		// Bound how long a client may dribble headers or stall reads of
		// our response; without these a handful of slow sockets can pin
		// every server goroutine.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
	}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String() + "/predict"
	fmt.Printf("serving on %s\n", url)

	// Demo load: 8 concurrent clients, 25 requests each, one shared model.
	// The batcher coalesces them: expect far fewer batches than requests.
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				input := dcf.RandNormal(uint64(c*100+i+1), 0, 1, dim).F
				body, _ := json.Marshal(map[string]any{"x": input})
				resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
				if err != nil {
					log.Fatal(err)
				}
				var reply struct {
					Scores []float64 `json:"scores"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
				best, bestV := 0, reply.Scores[0]
				for k, v := range reply.Scores {
					if v > bestV {
						best, bestV = k, v
					}
				}
				mu.Lock()
				counts[best]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	stats := model.Stats()
	fmt.Printf("200 concurrent predictions served; class histogram: %v\n", counts)
	fmt.Printf("batching: %d requests in %d batches (avg %.1f rows/batch)\n",
		stats.BatchedRequests, stats.Batches, stats.AvgBatchRows())

	// Graceful shutdown: normally this waits for SIGINT/SIGTERM; the demo
	// has finished its load, so trigger it ourselves and drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { _ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM) }()
	<-ctx.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	model.Close() // drain the batcher: every accepted request completes
	fmt.Println("drained and shut down cleanly")
}
