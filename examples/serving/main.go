// Serving example: an HTTP model server over one shared Session and one
// pre-compiled Callable — the paper's §3 deployment shape (a multi-tenant
// server driving one graph with many concurrent steps) in ~100 lines.
//
// Every request handler calls the same Callable from its own goroutine;
// the Session is concurrency-safe, the Callable skips all per-request
// planning, and r.Context() threads each client's disconnect/deadline into
// the executor, so abandoned requests stop consuming CPU.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"

	"repro/dcf"
)

const dim = 16

// buildModel compiles score = softmax(tanh(x @ W1) @ W2) for [1,dim]
// inputs into a Callable. In a real server the weights would come from a
// checkpoint (Session.RestoreVariables).
func buildModel() (*dcf.Callable, error) {
	g := dcf.NewGraph()
	x := g.Placeholder("x")
	w1 := g.Const(dcf.GlorotUniform(1, dim, dim))
	w2 := g.Const(dcf.GlorotUniform(2, dim, 4))
	scores := x.MatMul(w1).Tanh().MatMul(w2).Softmax()
	if err := g.Err(); err != nil {
		return nil, err
	}
	sess := dcf.NewSession(g)
	return sess.MakeCallable(dcf.CallableSpec{
		Feeds:   []string{"x"},
		Fetches: []dcf.Tensor{scores},
	})
}

// predictHandler decodes {"x": [..16 floats..]}, runs the shared Callable
// under the request's context, and replies with the class scores.
func predictHandler(model *dcf.Callable) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			X []float64 `json:"x"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.X) != dim {
			http.Error(w, fmt.Sprintf("want {\"x\": [%d floats]}", dim), http.StatusBadRequest)
			return
		}
		out, err := model.Call(r.Context(), dcf.FromFloats(req.X, 1, dim))
		if err != nil {
			// A canceled r.Context() lands here: the executor stopped
			// promptly instead of finishing a step nobody will read.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"scores": out[0].F})
	}
}

func main() {
	model, err := buildModel()
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", predictHandler(model))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/predict"
	fmt.Printf("serving on %s\n", url)

	// Demo load: 8 concurrent clients, 25 requests each, one shared model.
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				input := dcf.RandNormal(uint64(c*100+i+1), 0, 1, dim).F
				body, _ := json.Marshal(map[string]any{"x": input})
				resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
				if err != nil {
					log.Fatal(err)
				}
				var reply struct {
					Scores []float64 `json:"scores"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
				best, bestV := 0, reply.Scores[0]
				for k, v := range reply.Scores {
					if v > bestV {
						best, bestV = k, v
					}
				}
				mu.Lock()
				counts[best]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("200 concurrent predictions served; class histogram: %v\n", counts)
}
