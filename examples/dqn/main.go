// Deep Q-Network example (§6.5): the whole reinforcement-learning
// interaction — conditional explore/exploit action selection, the
// environment transition, a conditional write to an in-graph replay
// database, Q-learning on a sampled batch, and a conditional target-network
// sync — fused into a single dataflow graph, invoked once per interaction.
// The benchmark variant (cmd/dcfbench -exp dqn) compares this against the
// client-driven out-of-graph implementation.
package main

import (
	"fmt"
	"log"

	"repro/dcf"
	"repro/internal/nn"
)

const (
	stateDim  = 6
	actions   = 3
	hidden    = 16
	replayCap = 128
	batch     = 8
	eps       = 0.15
	gamma     = 0.9
	lr        = 0.05
)

func main() {
	g := dcf.NewGraph()
	q1 := nn.NewDense(g, "q/l1", stateDim, hidden, func(t dcf.Tensor) dcf.Tensor { return t.Tanh() }, 1)
	q2 := nn.NewDense(g, "q/l2", hidden, actions, nil, 2)
	vars := &nn.VarSet{}
	vars.Merge(&q1.Vars)
	vars.Merge(&q2.Vars)
	g.Variable("replay", dcf.Zeros(replayCap, 2*stateDim+actions+1))
	g.Variable("step", dcf.ScalarVal(0))

	s := g.Placeholder("state")
	stepV := g.ReadVariable("step")

	// Conditional action selection: explore with probability eps.
	qs := q2.Apply(q1.Apply(s))
	explore := g.RandomUniformOp(1).Less(g.Scalar(eps))
	action := g.Cond(explore,
		func() []dcf.Tensor {
			return []dcf.Tensor{g.RandomUniformOp(1).Mul(g.Scalar(actions)).Cast(dcf.Int)}
		},
		func() []dcf.Tensor { return []dcf.Tensor{qs.ArgMax(1)} },
	)[0]
	aOne := action.OneHot(actions)

	// Synthetic environment: deterministic transition + reward.
	we := g.Const(dcf.RandNormal(101, 0, 0.4, stateDim+actions, stateDim))
	wr := g.Const(dcf.RandNormal(102, 0, 0.6, stateDim, actions))
	ns := dcf.Concat(1, s, aOne).MatMul(we).Tanh()
	r := aOne.Mul(s.MatMul(wr)).ReduceSum().Reshape(1, 1)

	// In-graph replay database write.
	slot := stepV.Mod(g.Scalar(replayCap)).Cast(dcf.Int).Reshape(1)
	write := g.ScatterUpdate("replay", slot, dcf.Concat(1, s, aOne, r, ns))

	// Q-learning over a sampled batch (single network for brevity; the
	// benchmark uses a separate target network).
	limit := stepV.Add(g.Scalar(1)).Minimum(g.Scalar(replayCap))
	ixs := g.RandomUniformOp(batch).Mul(limit).Cast(dcf.Int)
	rows := g.ReadVariable("replay").After(write).Gather(ixs)
	sB := rows.SliceCols(0, stateDim)
	aB := rows.SliceCols(stateDim, actions)
	rB := rows.SliceCols(stateDim+actions, 1).Squeeze(1)
	nsB := rows.SliceCols(stateDim+actions+1, stateDim)
	qNext := q2.Apply(q1.Apply(nsB)).ReduceMax([]int{1}, false).StopGradient()
	targetQ := rB.Add(qNext.Mul(g.Scalar(gamma)))
	predQ := q2.Apply(q1.Apply(sB)).Mul(aB).ReduceSumAxes([]int{1}, false)
	loss := nn.MSE(predQ, targetQ)
	train, err := nn.SGDStep(g, loss, vars, lr, false)
	if err != nil {
		log.Fatal(err)
	}
	stepOp := g.Group(write, train, g.AssignAdd("step", g.Scalar(1)))
	if err := g.Err(); err != nil {
		log.Fatal(err)
	}

	sess := dcf.NewSession(g)
	if err := sess.InitVariables(); err != nil {
		log.Fatal(err)
	}
	cur := dcf.RandNormal(5, 0, 1, 1, stateDim)
	var totalReward float64
	const episodes = 400
	for i := 0; i < episodes; i++ {
		out, err := sess.Run(dcf.Feeds{"state": cur}, []dcf.Tensor{ns, r}, stepOp)
		if err != nil {
			log.Fatal(err)
		}
		cur = out[0]
		totalReward += out[1].F[0]
		if (i+1)%100 == 0 {
			fmt.Printf("after %3d interactions: cumulative reward %.2f\n", i+1, totalReward)
		}
	}
	fmt.Println("every decision above ran inside the dataflow graph: one Session.Run per interaction")
}
