// Package repro is a from-scratch Go reproduction of "Dynamic Control Flow
// in Large-Scale Machine Learning" (Yu et al., EuroSys 2018): a dataflow
// machine-learning runtime with in-graph conditionals and loops, automatic
// differentiation through control flow, multi-device execution with memory
// swapping, and a distributed runtime.
//
// The public API is package repro/dcf; DESIGN.md maps the paper's systems
// and experiments to modules, and bench_test.go regenerates every table and
// figure of the paper's evaluation.
//
// # Serving
//
// The execution API is serving-grade: dcf.Session is safe for concurrent
// Run/RunCtx/Callable.Call from many goroutines, every entry point has a
// context-taking variant whose cancellation drains the executor promptly
// (including cross-partition rendezvous in the distributed runtime), and
// dcf.Session.MakeCallable pre-compiles a run signature so the hot path
// pays no pruning, signature hashing, or feed-map allocation per step —
// the paper's per-signature executors.
//
// On top of the Callable sits dynamic request batching (internal/serve,
// surfaced as dcf.NewServer / Session.MakeBatchedCallable): concurrent
// single-request Predict calls are coalesced into one batched executor
// step — feeds stacked along axis 0, fetches sliced back per request —
// under an adaptive policy (flush immediately when idle; grow batches
// with load; MaxBatchSize/MaxQueueDelay bounds; shape-keyed buckets so
// ragged sequence lengths batch with their own kind and never pay
// padding). Requests are validated at enqueue against declared
// placeholder specs (dcf.Graph.PlaceholderTyped) and a canceled request
// is dropped from its micro-batch without disturbing its neighbors.
//
// See examples/serving for an HTTP model server over the batched path,
// cmd/dcfserve for the production server (JSON predict API, checkpoint
// restore, /healthz, Prometheus /metrics, graceful drain), `cmd/dcfbench
// -exp serving` for the unbatched concurrency sweep, and `cmd/dcfbench
// -exp batchserve` for the batched latency/throughput frontier.
//
// # Replicated serving
//
// internal/fleetserve extends the serving story across processes: a
// failure-aware router fronts N model replicas, each an independently
// registered graph on cluster.Worker daemons with its own request batcher,
// so a kill -9'd daemon costs capacity — never availability or
// correctness. The router implements least-loaded dispatch over the
// batchers' live occupancy gauges, a bounded retry budget that reroutes
// failed attempts to replicas the request has not tried, per-replica
// circuit breakers (consecutive-failure trip, jittered-exponential
// readmission probes, half-open single-probe recovery), health-checked
// membership (a dead daemon is ejected within one probe interval), and
// optional hedged requests after the observed p99 latency with
// first-response-wins loser cancellation. Replicas are stateless by
// contract: joining and readmission re-register the graph, re-push
// Config.Init, and warm up before any traffic — the serving mirror of the
// training stack's checkpoint/restore.
//
// `dcfserve -replicas addr1,addr2,...` serves the same HTTP API over a
// replica fleet (plus /fleetz for per-replica breaker state and routing
// counters); retriable routing failures map to 503 + Retry-After and
// queue backpressure to 429. `cmd/dcfbench -exp fleetserve` sweeps
// replica counts {1,2,4} in closed and open loop with one replica killed
// and restarted mid-run, and the fleet-chaos CI job replays the same
// scenario across real OS processes under sustained HTTP load. Shared
// retry hygiene lives in internal/backoff (Jitter, Exp) and is enforced
// by the dcfvet backoffjitter analyzer: no fixed-duration sleeps in retry
// loops.
//
// # Distributed execution
//
// Dynamic control flow runs distributed (§3, §4.4): partitions on
// different workers make independent progress, coordinating only through
// Send/Recv — the driver participates at step start and completion, never
// per iteration. Two transports implement this contract:
//
//   - In-process: distrib.NewCluster runs one executor per device over a
//     shared rendezvous with configurable simulated latency/bandwidth (the
//     benchmarks' deterministic fabric stand-in).
//   - Multi-process: distrib.Dial connects to generic worker daemons
//     (internal/cluster.Worker, the cmd/dcfworker CLI) over TCP;
//     Fleet.NewCluster partitions the graph by worker, ships each daemon
//     its gob-encoded subgraph once (plans compile at registration), and
//     TCPCluster.RunCtx runs steps against the cached plans. Every step
//     executes in a private rendezvous key scope, so an aborted step can
//     never leak tokens into the next; driver-side ctx cancellation fans
//     out as an abort control message that drains blocked Recvs on every
//     worker. Killing a daemon mid-step fails only that step with a
//     wrapped error naming the worker; after a restart the driver
//     redials, re-registers, and the next step succeeds.
//
// See internal/cluster/README.md for the wire protocol, step scoping, and
// failure model; examples/tcpcluster for an end-to-end demo; and
// `cmd/dcfbench -exp tcpdist` for the steps/sec sweep against worker
// count and injected fabric latency.
//
// # Fault tolerance
//
// Recovery follows the paper's §3 coarse-grained model: an iterative job
// runs between distributed checkpoints of its session variables, and every
// failure — a crashed daemon, a torn connection, an aborted step — is
// handled the same way: roll back to the last checkpoint, rebuild over the
// workers that are alive now, restore, and replay. There is no
// fine-grained recovery inside a step.
//
//   - Checkpoints: TCPCluster.Checkpoint quiesces the cluster at a step
//     boundary, collects each worker's variable shard over the control
//     plane, and writes shards + a manifest durably (temp-file + rename;
//     LATEST flips only after everything below it is complete). A
//     CheckpointEvery policy on the cluster takes one automatically every
//     n-th step. Format and layout: internal/checkpoint/README.md.
//   - Resume: Fleet.Resume re-registers the graph (fresh partitioning over
//     the live workers), re-maps shards to their new hosts by variable
//     name, restores, and positions the step counter — a killed driver or
//     daemon plus a restart yields fetches bit-identical to an
//     uninterrupted run (worker RNG streams are a pure function of the
//     step number, so replayed steps redraw the same randomness).
//   - Elastic membership: a Fleet learns joins and leaves (Add/Remove,
//     liveness probes). distrib.RunJob drives a JobSpec — a graph built as
//     a function of the live worker set — absorbing membership changes at
//     checkpoint boundaries and rolling back on step failures under a
//     bounded retry budget, so a dead daemon's shards are reassigned to
//     survivors instead of failing the job.
//
// The chaos CI job exercises the whole stack: a 1000-step two-daemon run
// with one daemon kill -9'd and restarted mid-run must produce exactly the
// fetch sequence of an undisturbed run. `cmd/dcfbench -exp chaos` measures
// the same scenario's recovery latency (steps/sec before, during, after).
//
// # Static verification
//
// Two layers of static checking run before any graph executes and in CI:
//
//   - Graph verification (internal/verify): a multi-error static analyzer
//     over dataflow graphs — dtype/shape inference with unknown-dimension
//     joins, control-flow structure (frame nesting, Switch/Merge typing,
//     NextIteration back edges, reachable Exits), dead/unfetchable nodes,
//     fetch/feed validity, and Send/Recv key pairing with a
//     cross-partition rendezvous-cycle check. It runs once per graph
//     version when a session compiles a plan (never per step), at worker
//     graph registration (diagnostics travel back in the registration
//     reply), after partitioning, and as a post-pass after graph
//     optimization. `cmd/dcfgraph -lint` runs it from the command line.
//     Details: internal/verify/README.md.
//   - Static memory bounds (verify.EstimateMemory): a liveness analysis
//     over the verified graph that bounds peak tensor residency before
//     anything executes. The bound is symbolic in the unknowns — a base
//     plus per-unknown-row and per-loop-iteration terms — and collapses
//     to a finite byte count when shapes are closed, as every forward
//     model here is; while-loop windows multiply residency by
//     min(parallel_iterations, window). `cmd/dcfgraph -analyze` prints
//     the bound, the peak node, top contributors, and per-node residency,
//     and CI asserts the forward models stay finite. Like verification,
//     estimation runs at plan-compile and lint time — never on the step
//     path. Pool high-water tests (dcf/memguard_test.go) hold the
//     runtime's measured tensor_pool_peak_bytes under each model's
//     static bound.
//   - Code analysis (internal/analysis, cmd/dcfvet): custom analyzers that
//     machine-check repository invariants — kernels claiming input buffers
//     must declare Fresh outputs, gob-encoded wire/checkpoint types must
//     survive the round trip, no bare time.Sleep synchronization in
//     tests, exported entry points must thread context.Context, and no
//     panic() in executor hot paths. On top of the per-package checks,
//     three whole-program analyzers walk a conservative callgraph with
//     per-function effect summaries (internal/analysis/README.md):
//     lockorder reports cyclic mutex-acquisition orders (inter-procedural,
//     through generic helpers and method-value callbacks), goroleak flags
//     spawned goroutines that can block forever with no ctx/quit/close
//     escape, and unsafesend flags channel sends racing a close owned by
//     another function. CI runs dcfvet over ./... (stale allow
//     suppressions fail via -unused-allows) and self-tests every analyzer
//     against a seeded-violation fixture module that must fail.
//
// # Observability
//
// One metrics layer and one tracing model span every runtime layer
// (internal/metrics and internal/trace, each with a README):
//
//   - Metrics: a dependency-free registry of atomic counters, gauges, and
//     log-bucketed latency histograms. The executor, tensor pool, request
//     batcher, cluster worker, and fleet router all register named
//     instruments (exec_*, tensor_pool_*, serve_*, cluster_*, fleet_*);
//     metrics.Handler serves any set of registries as Prometheus text
//     exposition or expvar-style JSON. Instrument names are vet-enforced
//     (the metricname analyzer): snake_case with a unit suffix, counters
//     ending in _total.
//   - Per-step tracing: dcf.RunOptions{Trace: true} records one span per
//     node execution into that run's private RunMetadata.StepTrace —
//     opt-in per step, zero-overhead when off (the alloc-budget test
//     pins this). Render with ChromeTrace (Perfetto-loadable) or ASCII.
//   - Distributed tracing: TCPCluster.RunTraced runs one step with
//     tracing on every worker and merges the per-worker timelines into a
//     single Chrome trace — each worker on its own process track, with
//     flow arrows linking every cross-worker Send to its Recv
//     (rendezvous-key-derived correlation ids, no clock agreement
//     required beyond a per-part base offset).
//
// Surfaces: dcfworker's -health address serves /metrics, /debug/pprof,
// and /debug/trace?steps=N (arm tracing for the next N live steps and get
// their merged trace); the driver's -trace flag writes a fleet-wide
// traced step to a file; dcfserve serves /metrics, /debug/vars,
// /debug/pprof, and /debug/trace?steps=N (traced probe steps);
// `dcfbench -exp tcpdist -trace out.json` captures a traced distributed
// step from the benchmark fleet.
//
// # Runtime performance knobs
//
// The executor hot path (internal/exec, see its README.md) is dense-indexed
// and buffer-pooled. The knobs that matter when tuning throughput:
//
//   - SessionOptions.ParallelIterations (dcf) / per-loop
//     parallel_iterations: the while-loop window, which also sizes each
//     frame's iteration ring (default 32).
//   - exec.DefaultParallelIterations, exec.Config.ParallelIterations: the
//     same knob at the executor layer.
//   - tensor.Alloc / tensor.Recycle / tensor.NewFromPool: the size-classed
//     tensor buffer pool backing kernel outputs and executor recycling.
//   - cmd/dcfbench -cpuprofile/-memprofile: pprof profiles over any figure
//     experiment, for perf work without code edits.
package repro
