// Package repro is a from-scratch Go reproduction of "Dynamic Control Flow
// in Large-Scale Machine Learning" (Yu et al., EuroSys 2018): a dataflow
// machine-learning runtime with in-graph conditionals and loops, automatic
// differentiation through control flow, multi-device execution with memory
// swapping, and a distributed runtime.
//
// The public API is package repro/dcf; DESIGN.md maps the paper's systems
// and experiments to modules, and bench_test.go regenerates every table and
// figure of the paper's evaluation.
package repro
