// Package repro is a from-scratch Go reproduction of "Dynamic Control Flow
// in Large-Scale Machine Learning" (Yu et al., EuroSys 2018): a dataflow
// machine-learning runtime with in-graph conditionals and loops, automatic
// differentiation through control flow, multi-device execution with memory
// swapping, and a distributed runtime.
//
// The public API is package repro/dcf; DESIGN.md maps the paper's systems
// and experiments to modules, and bench_test.go regenerates every table and
// figure of the paper's evaluation.
//
// # Serving
//
// The execution API is serving-grade: dcf.Session is safe for concurrent
// Run/RunCtx/Callable.Call from many goroutines, every entry point has a
// context-taking variant whose cancellation drains the executor promptly
// (including cross-partition rendezvous in the distributed runtime), and
// dcf.Session.MakeCallable pre-compiles a run signature so the hot path
// pays no pruning, signature hashing, or feed-map allocation per step —
// the paper's per-signature executors. See examples/serving for an HTTP
// model server and `cmd/dcfbench -exp serving` for the concurrency sweep.
//
// # Runtime performance knobs
//
// The executor hot path (internal/exec, see its README.md) is dense-indexed
// and buffer-pooled. The knobs that matter when tuning throughput:
//
//   - SessionOptions.ParallelIterations (dcf) / per-loop
//     parallel_iterations: the while-loop window, which also sizes each
//     frame's iteration ring (default 32).
//   - exec.DefaultParallelIterations, exec.Config.ParallelIterations: the
//     same knob at the executor layer.
//   - tensor.Alloc / tensor.Recycle / tensor.NewFromPool: the size-classed
//     tensor buffer pool backing kernel outputs and executor recycling.
//   - cmd/dcfbench -cpuprofile/-memprofile: pprof profiles over any figure
//     experiment, for perf work without code edits.
package repro
